"""The Rumba runtime — the online half of Fig. 4, end to end.

:class:`RumbaSystem` drives one benchmark through the full loop for each
accelerator invocation:

1. the accelerator (NPU backend) produces approximate outputs,
2. the detection module scores every element and sets recovery bits in the
   recovery queue,
3. the CPU-side recovery module drains the queue, re-executes flagged
   iterations exactly and merges the results,
4. the pipeline model accounts the overlap timing, the cost model accounts
   energy, and
5. the online tuner adapts the threshold for the next invocation.

Construction from scratch is easiest via
:func:`repro.core.offline.prepare_system`, which runs both offline trainers.

Every step is an instrumentation point: attach a
:class:`~repro.observability.Telemetry` (constructor argument or
:meth:`RumbaSystem.attach_telemetry`) and the loop exports the paper's
observable quantities — fire rate, recovered fraction, threshold, queue
pressure, keep-up — as metrics plus per-phase spans.  Without telemetry the
hooks cost one ``is None`` check each.
"""

from __future__ import annotations

import copy
import sys
import threading
from collections import deque
from contextlib import ExitStack, nullcontext
from dataclasses import dataclass, field
from typing import List, MutableSequence, Optional

import numpy as np

from repro.apps.base import Application
from repro.approx.ensemble import ApproximatorEnsemble
from repro.approx.npu_backend import NPUBackend
from repro.core.config import RumbaConfig
from repro.core.costs import AppCosts, CostModel, OffloadOverhead
from repro.core.detection import DetectionModule, DetectionResult
from repro.core.pipeline import PipelineResult, simulate_pipeline
from repro.core.recovery import RecoveryModule, RecoveryResult
from repro.core.tuner import InvocationFeedback, OnlineTuner
from repro.errors import ConfigurationError
from repro.hardware.energy import EnergyModel
from repro.hardware.npu import NPUModel
from repro.hardware.queues import ConfigQueue
from repro.observability.instrument import Telemetry, ambient_telemetry_registry
from repro.predictors.base import ErrorPredictor

__all__ = ["RumbaSystem", "InvocationRecord", "PendingInvocation"]

# Shared reusable no-op context for the uninstrumented hot path.
_NOOP = nullcontext()


@dataclass
class InvocationRecord:
    """Everything observed during one accelerator invocation.

    ``choices`` holds the per-row routed ensemble-member indices (int8)
    when the system runs an :class:`~repro.approx.ensemble.ApproximatorEnsemble`;
    the serving journal persists them so ``repro replay`` can force the
    same routing bit-for-bit.  ``None`` on single-backend systems.
    """

    outputs: np.ndarray
    detection: DetectionResult
    recovery: RecoveryResult
    pipeline: PipelineResult
    costs: AppCosts
    measured_error: Optional[float] = None
    unchecked_error: Optional[float] = None
    choices: Optional[np.ndarray] = None

    @property
    def fix_fraction(self) -> float:
        return self.recovery.recovered_fraction


@dataclass
class PendingInvocation:
    """The accelerator-side half of one invocation, awaiting CPU recovery.

    Produced by :meth:`RumbaSystem.begin_invocation` (accelerate + detect)
    and consumed by :meth:`RumbaSystem.complete_invocation` (recover +
    tune).  This is the paper's producer/consumer pipeline made explicit:
    the accelerator can begin the next invocation while the CPU is still
    recovering this one — the serving layer's recovery workers drain
    pending invocations from a shared queue.
    """

    inputs: np.ndarray
    approx: np.ndarray
    detection: DetectionResult
    recovery_bits: np.ndarray
    measure_quality: bool
    exact: Optional[np.ndarray] = None
    choices: Optional[np.ndarray] = None
    router_features: Optional[np.ndarray] = None
    _stack: Optional[ExitStack] = field(default=None, repr=False)
    _scope: Optional[object] = field(default=None, repr=False)

    @property
    def n_elements(self) -> int:
        return int(self.inputs.shape[0])


class RumbaSystem:
    """A benchmark wired into the full Rumba detection/recovery loop.

    Parameters
    ----------
    max_records:
        When set, :attr:`records` becomes a ring buffer of that length so
        long-running deployments do not grow without bound; the windowed
        summaries then cover the retained records, while lifetime
        aggregates remain available through an attached telemetry's
        metrics registry.  Default (None) keeps every record, matching the
        experimenters' workflows.
    telemetry:
        Optional :class:`~repro.observability.Telemetry`.  When omitted
        and ambient telemetry is armed (see
        :func:`repro.observability.enable_ambient_telemetry`), one is
        created automatically against the ambient registry.
    """

    def __init__(
        self,
        app: Application,
        backend: NPUBackend,
        predictor: ErrorPredictor,
        config: Optional[RumbaConfig] = None,
        energy_model: Optional[EnergyModel] = None,
        npu: Optional[NPUModel] = None,
        overhead: Optional[OffloadOverhead] = None,
        max_records: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        ensemble: Optional[ApproximatorEnsemble] = None,
    ):
        self.app = app
        self.backend = backend
        self.predictor = predictor
        if ensemble is not None and ensemble.reference is not backend:
            raise ConfigurationError(
                "the ensemble's reference member must be the system backend"
            )
        self.ensemble = ensemble
        self.config = config or RumbaConfig(scheme=predictor.name)
        if self.config.scheme != predictor.name:
            raise ConfigurationError(
                f"config scheme {self.config.scheme!r} does not match the "
                f"predictor {predictor.name!r}"
            )
        self.tuner = OnlineTuner(self.config)
        if self.ensemble is not None:
            # Backpressure degradations shift the router's cost/quality
            # trade-off in lockstep with the detection threshold.
            self.tuner.on_degradation = self.ensemble.set_degradation
        self.detection = DetectionModule(
            predictor,
            threshold=self.tuner.threshold,
            n_inputs=backend.topology.n_inputs,
        )
        self.recovery = RecoveryModule(app.exact)
        self.cost_model = CostModel(
            app, energy_model=energy_model, npu=npu, overhead=overhead
        )
        # Fig. 4: the accelerator configuration and the checker
        # coefficients travel over the same config queue at kernel launch.
        self.config_queue = ConfigQueue()
        self.config_queue.send(
            "accelerator", backend.network.get_flat_params()
        )
        if predictor.is_fitted:
            coefficients = predictor.coefficients()
            if coefficients:
                expected = predictor.coefficient_count()
                if len(coefficients) != expected:
                    raise ConfigurationError(
                        f"{predictor.name} ships {len(coefficients)} "
                        f"coefficients but declares {expected}"
                    )
                self.config_queue.send("checker", coefficients)
        if max_records is not None and max_records < 1:
            raise ConfigurationError("max_records must be >= 1")
        self.max_records = max_records
        self.records: MutableSequence[InvocationRecord] = (
            [] if max_records is None else deque(maxlen=max_records)
        )
        self.total_invocations = 0
        self._next_iteration_id = 0
        # _mutex guards the short iteration-id/threshold handoff in
        # begin_invocation; _complete_lock serializes the whole CPU-side
        # half (recover + tune + record append).  Two locks so a worker
        # thread can begin the next invocation while recovery workers are
        # still completing earlier ones on the same shard — the paper's
        # producer/consumer overlap.
        self._mutex = threading.Lock()
        self._complete_lock = threading.Lock()
        self.telemetry: Optional[Telemetry] = None
        if telemetry is None and ambient_telemetry_registry() is not None:
            telemetry = Telemetry(
                app=app.name,
                scheme=predictor.name,
                registry=ambient_telemetry_registry(),
            )
        if telemetry is not None:
            self.attach_telemetry(telemetry)

    def attach_telemetry(self, telemetry: Optional[Telemetry]) -> None:
        """Attach (or detach, with None) telemetry to the whole loop."""
        self.telemetry = telemetry
        self.detection.telemetry = telemetry
        self.recovery.telemetry = telemetry
        self.tuner.telemetry = telemetry
        if telemetry is not None:
            telemetry.on_threshold(self.tuner.threshold, 0)

    # ------------------------------------------------------------------ #
    # Serialization (process-backend serving)                            #
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Pickle everything except locks and telemetry.

        The process serving backend ships one prepared system to each
        worker process exactly once, at startup; locks are per-process and
        telemetry is bound to the parent's registry, so neither crosses the
        fork/spawn boundary.  The submodules strip their own telemetry
        hooks the same way.
        """
        state = self.__dict__.copy()
        del state["_mutex"]
        del state["_complete_lock"]
        state["telemetry"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._mutex = threading.Lock()
        self._complete_lock = threading.Lock()
        self.telemetry = None
        # Pre-ensemble pickles (older journals) lack the attribute.
        self.ensemble = state.get("ensemble")
        if self.ensemble is not None:
            self.tuner.on_degradation = self.ensemble.set_degradation

    # ------------------------------------------------------------------ #
    # Execution                                                          #
    # ------------------------------------------------------------------ #
    def run_invocation(
        self,
        inputs: np.ndarray,
        measure_quality: bool = True,
        forced_choices: Optional[np.ndarray] = None,
    ) -> InvocationRecord:
        """Run one accelerator invocation through detect-recover-tune.

        ``measure_quality=True`` additionally computes the exact outputs
        for the *whole* invocation to report measured output error — that
        is the experimenter's measurement, not something the deployed
        system would do.
        """
        return self.complete_invocation(
            self.begin_invocation(
                inputs, measure_quality, forced_choices=forced_choices
            )
        )

    def begin_invocation(
        self,
        inputs: np.ndarray,
        measure_quality: bool = True,
        forced_choices: Optional[np.ndarray] = None,
    ) -> PendingInvocation:
        """Accelerator-side half of one invocation: accelerate + detect.

        Returns a :class:`PendingInvocation` whose recovery bits are set;
        pass it to :meth:`complete_invocation` (possibly from another
        thread) to run CPU recovery, tuning and record-keeping.  The
        caller is the accelerator-side producer: only one thread may drive
        ``begin_invocation`` on a given system at a time.

        On an ensemble system a *route* step precedes acceleration: the
        router picks a member per row, and the routed members compute the
        batch.  ``forced_choices`` (per-row member indices) bypasses the
        router — this is how ``repro replay`` reproduces a journaled run
        bit-for-bit regardless of what the online learner did since.
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        n = inputs.shape[0]
        if n == 0:
            raise ConfigurationError("invocation needs at least one element")
        if forced_choices is not None and self.ensemble is None:
            raise ConfigurationError(
                "forced_choices requires an ensemble system"
            )

        tel = self.telemetry
        stack: Optional[ExitStack] = None
        scope = None
        if tel is not None:
            stack = ExitStack()
            scope = stack.enter_context(tel.invocation(n))
        try:
            choices = None
            router_features = None
            if self.ensemble is not None:
                with (scope.phase("route") if scope else _NOOP):
                    router_features = self.ensemble.router_features(inputs)
                    if forced_choices is not None:
                        choices = np.asarray(
                            forced_choices, dtype=np.int8
                        ).ravel()
                        if choices.shape[0] != n:
                            raise ConfigurationError(
                                "forced_choices needs one entry per row"
                            )
                    else:
                        with self._mutex:
                            threshold = self.tuner.threshold
                        choices = self.ensemble.route(
                            router_features, threshold
                        )
                if scope is not None:
                    scope.annotate(
                        "route",
                        n_members=int(np.unique(choices).size),
                        forced=forced_choices is not None,
                    )

            with (scope.phase("accelerate") if scope else _NOOP):
                if self.ensemble is not None:
                    approx = self.ensemble.forward_routed(inputs, choices)
                else:
                    approx = self.backend(inputs)
                features = self.backend.features(inputs)

            # The experimenter's instrument, not a phase of the loop.
            true_errors = None
            exact = None
            if measure_quality or self.predictor.name == "Ideal":
                exact = self.app.exact(inputs)
                true_errors = self.app.element_errors(approx, exact)

            with (scope.phase("detect") if scope else _NOOP):
                with self._mutex:
                    self.detection.threshold = self.tuner.threshold
                    self._next_iteration_id += n
                # Fast path: detection owns the recovery-bits vector, so the
                # per-invocation RecoveryQueue — allocate, push n ids through
                # a locked Python deque, drain, rebuild the bool vector — is
                # an identity transform here (the queue is private, every
                # push precedes the single drain, and capacity >= n means no
                # stalls).  Skip it and take the bits straight from
                # detection; hardware-facing queue semantics stay covered by
                # RecoveryQueue's own tests and the hardware model.
                detection = self.detection.detect_into(
                    features=features,
                    approx_outputs=approx,
                    true_errors=true_errors,
                    group_ids=choices,
                )
                bits = detection.recovery_bits
                if self.ensemble is not None:
                    self.ensemble.observe_detection(choices, bits)
            if tel is not None:
                # Emulate the queue telemetry the drained path reported:
                # all n entries were in flight at the drain point, capacity
                # is the configured floor (or n, whichever is larger), and
                # a strict queue with capacity >= n never stalls.
                tel.on_queue(
                    n, max(self.config.recovery_queue_capacity, n), 0
                )
                scope.annotate("detect", n_fired=int(detection.n_fired))
            return PendingInvocation(
                inputs=inputs,
                approx=approx,
                detection=detection,
                recovery_bits=bits,
                measure_quality=measure_quality,
                exact=exact,
                choices=choices,
                router_features=router_features,
                _stack=stack,
                _scope=scope,
            )
        except BaseException:
            if stack is not None:
                stack.__exit__(*sys.exc_info())
            raise

    def complete_invocation(
        self, pending: PendingInvocation
    ) -> InvocationRecord:
        """CPU-side half of one invocation: recover + tune + record.

        Safe to call from a different thread than the one that ran
        :meth:`begin_invocation`; completions of one system serialize on
        an internal lock, so several recovery workers may drain a shared
        backlog of pending invocations without corrupting the tuner or
        the record history.
        """
        scope = pending._scope
        with self._complete_lock:
            try:
                with (scope.phase("recover") if scope else _NOOP):
                    recovery = self.recovery.recover(
                        pending.inputs, pending.approx, pending.recovery_bits
                    )
                if scope is not None:
                    scope.annotate(
                        "recover", n_recovered=int(recovery.n_recovered)
                    )

                n = pending.n_elements
                with (scope.phase("tune") if scope else _NOOP):
                    if self.ensemble is not None:
                        accel_cycles = self.ensemble.blended_invocation_cycles(
                            pending.choices, self.cost_model
                        )
                    else:
                        accel_cycles = self.cost_model.npu.invocation_cycles(
                            self.backend.topology
                        )
                    pipeline = simulate_pipeline(
                        pending.recovery_bits,
                        accel_cycles_per_iteration=accel_cycles,
                        cpu_cycles_per_iteration=(
                            self.cost_model.cpu_iteration_cycles()
                        ),
                        detector_placement=self.config.detector_placement,
                        checker_cycles=self.detection.checker.check_cycles(),
                    )
                    if self.ensemble is not None:
                        costs = self.ensemble.blended_app_costs(
                            self.cost_model,
                            self.detection.checker,
                            pending.choices,
                            fix_fraction=recovery.recovered_fraction,
                            detector_placement=self.config.detector_placement,
                            observed_kernel_cycles=pipeline.makespan / n,
                        )
                    else:
                        costs = self.cost_model.whole_app_costs(
                            topology=self.backend.topology,
                            checker=self.detection.checker,
                            fix_fraction=recovery.recovered_fraction,
                            detector_placement=self.config.detector_placement,
                            observed_kernel_cycles=pipeline.makespan / n,
                        )
                    self.tuner.update(
                        InvocationFeedback(
                            fix_fraction=recovery.recovered_fraction,
                            cpu_kept_up=pipeline.cpu_kept_up,
                            cpu_utilization=pipeline.cpu_utilization,
                        )
                    )
                if scope is not None:
                    scope.annotate(
                        "tune", threshold=float(self.tuner.threshold)
                    )

                if (
                    self.ensemble is not None
                    and recovery.exact_outputs is not None
                    and recovery.n_recovered
                ):
                    # Recovery already paid for exact re-execution of the
                    # flagged rows: feed those labels to the online
                    # routing learner.  Routing-only — detection stays on
                    # the statically trained predictor, so replayed
                    # recovery bits are unaffected.
                    with (scope.phase("learn") if scope else _NOOP):
                        self.ensemble.observe_recovery(
                            pending.router_features,
                            pending.choices,
                            recovery.recovery_indices,
                            pending.approx[recovery.recovery_indices],
                            recovery.exact_outputs,
                        )
                    if scope is not None:
                        scope.annotate(
                            "learn",
                            retrains=int(self.ensemble.retrain_count),
                        )

                measured_error = None
                unchecked_error = None
                if pending.measure_quality and pending.exact is not None:
                    measured_error = self.app.output_error(
                        recovery.merged_outputs, pending.exact
                    )
                    unchecked_error = self.app.output_error(
                        pending.approx, pending.exact
                    )

                record = InvocationRecord(
                    outputs=recovery.merged_outputs,
                    detection=pending.detection,
                    recovery=recovery,
                    pipeline=pipeline,
                    costs=costs,
                    measured_error=measured_error,
                    unchecked_error=unchecked_error,
                    choices=pending.choices,
                )
                if scope:
                    scope.observe_record(record)
            except BaseException:
                if pending._stack is not None:
                    pending._stack.__exit__(*sys.exc_info())
                raise
            if pending._stack is not None:
                pending._stack.close()
            self.records.append(record)
            self.total_invocations += 1
            return record

    def apply_backpressure(
        self, direction: int, factor: Optional[float] = None
    ) -> float:
        """Thread-safe graceful degradation hook for the serving layer.

        ``direction > 0`` raises the detection threshold one step
        (:meth:`OnlineTuner.degrade` — fewer elements recovered, shedding
        CPU-side work); ``direction < 0`` undoes one step
        (:meth:`OnlineTuner.relax`).  Serialized against concurrent
        :meth:`complete_invocation` tuner updates.  Returns the threshold.
        """
        with self._complete_lock:
            if direction > 0:
                return self.tuner.degrade(factor)
            if direction < 0:
                return self.tuner.relax(factor)
            return self.tuner.threshold

    def clone_shard(
        self,
        telemetry: Optional[Telemetry] = None,
        max_records: Optional[int] = None,
    ) -> "RumbaSystem":
        """A fresh system sharing this one's trained (immutable) models.

        The expensive offline artifacts — accelerator backend, cost and
        energy models, application — are shared by reference (they are
        read-only at run time); the predictor is deep-copied because
        output-history checkers like EMA carry running state; the mutable
        online state (tuner, detection module, recovery module, records)
        is rebuilt from scratch and seeded with the current thresholds.
        This is how the serving layer stamps out one shard per worker from
        a single prepared prototype.  Ensemble systems clone the ensemble
        too: each member backend decides via its own
        ``ApproxBackend.clone_shard`` hook whether to share (immutable
        weights, frozen memo tables) or copy (mutable runtime state), and
        the shard gets a fresh learner and router calibration.
        """
        shard_ensemble = (
            self.ensemble.clone_shard() if self.ensemble is not None else None
        )
        clone = RumbaSystem(
            app=self.app,
            backend=(
                shard_ensemble.reference
                if shard_ensemble is not None
                else self.backend
            ),
            predictor=copy.deepcopy(self.predictor),
            config=self.config,
            energy_model=self.cost_model.energy_model,
            npu=self.cost_model.npu,
            overhead=self.cost_model.overhead,
            max_records=self.max_records if max_records is None else max_records,
            telemetry=telemetry,
            ensemble=shard_ensemble,
        )
        # Each shard watches its own output stream: drop any EMA history
        # the prototype accumulated (calibration, earlier invocations) so
        # shards stay independent.
        clone.predictor.reset_state()
        # Carry over any threshold calibration applied after construction
        # (prepare_system calibrates EMA/Random/Uniform TOQ thresholds).
        clone.tuner.threshold = self.tuner.threshold
        clone.tuner.history = [clone.tuner.threshold]
        clone.detection.threshold = self.detection.threshold
        clone.recovery.verify = self.recovery.verify
        return clone

    def run_stream(
        self, invocations: List[np.ndarray], measure_quality: bool = True
    ) -> List[InvocationRecord]:
        """Run a sequence of invocations (the online tuner adapts between)."""
        return [self.run_invocation(x, measure_quality) for x in invocations]

    # ------------------------------------------------------------------ #
    # Summaries                                                          #
    # ------------------------------------------------------------------ #
    @property
    def mean_measured_error(self) -> float:
        errors = [r.measured_error for r in self.records if r.measured_error is not None]
        if not errors:
            raise ConfigurationError("no measured invocations recorded")
        return float(np.mean(errors))

    @property
    def mean_fix_fraction(self) -> float:
        if not self.records:
            raise ConfigurationError("no invocations recorded")
        return float(np.mean([r.fix_fraction for r in self.records]))
