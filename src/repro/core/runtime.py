"""The Rumba runtime — the online half of Fig. 4, end to end.

:class:`RumbaSystem` drives one benchmark through the full loop for each
accelerator invocation:

1. the accelerator (NPU backend) produces approximate outputs,
2. the detection module scores every element and sets recovery bits in the
   recovery queue,
3. the CPU-side recovery module drains the queue, re-executes flagged
   iterations exactly and merges the results,
4. the pipeline model accounts the overlap timing, the cost model accounts
   energy, and
5. the online tuner adapts the threshold for the next invocation.

Construction from scratch is easiest via
:func:`repro.core.offline.prepare_system`, which runs both offline trainers.

Every step is an instrumentation point: attach a
:class:`~repro.observability.Telemetry` (constructor argument or
:meth:`RumbaSystem.attach_telemetry`) and the loop exports the paper's
observable quantities — fire rate, recovered fraction, threshold, queue
pressure, keep-up — as metrics plus per-phase spans.  Without telemetry the
hooks cost one ``is None`` check each.
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass
from typing import List, MutableSequence, Optional

import numpy as np

from repro.apps.base import Application
from repro.approx.npu_backend import NPUBackend
from repro.core.config import RumbaConfig
from repro.core.costs import AppCosts, CostModel, OffloadOverhead
from repro.core.detection import DetectionModule, DetectionResult
from repro.core.pipeline import PipelineResult, simulate_pipeline
from repro.core.recovery import RecoveryModule, RecoveryResult
from repro.core.tuner import InvocationFeedback, OnlineTuner
from repro.errors import ConfigurationError
from repro.hardware.energy import EnergyModel
from repro.hardware.npu import NPUModel
from repro.hardware.queues import ConfigQueue, RecoveryQueue
from repro.observability.instrument import Telemetry, ambient_telemetry_registry
from repro.predictors.base import ErrorPredictor

__all__ = ["RumbaSystem", "InvocationRecord"]

# Shared reusable no-op context for the uninstrumented hot path.
_NOOP = nullcontext()


@dataclass
class InvocationRecord:
    """Everything observed during one accelerator invocation."""

    outputs: np.ndarray
    detection: DetectionResult
    recovery: RecoveryResult
    pipeline: PipelineResult
    costs: AppCosts
    measured_error: Optional[float] = None
    unchecked_error: Optional[float] = None

    @property
    def fix_fraction(self) -> float:
        return self.recovery.recovered_fraction


class RumbaSystem:
    """A benchmark wired into the full Rumba detection/recovery loop.

    Parameters
    ----------
    max_records:
        When set, :attr:`records` becomes a ring buffer of that length so
        long-running deployments do not grow without bound; the windowed
        summaries then cover the retained records, while lifetime
        aggregates remain available through an attached telemetry's
        metrics registry.  Default (None) keeps every record, matching the
        experimenters' workflows.
    telemetry:
        Optional :class:`~repro.observability.Telemetry`.  When omitted
        and ambient telemetry is armed (see
        :func:`repro.observability.enable_ambient_telemetry`), one is
        created automatically against the ambient registry.
    """

    def __init__(
        self,
        app: Application,
        backend: NPUBackend,
        predictor: ErrorPredictor,
        config: Optional[RumbaConfig] = None,
        energy_model: Optional[EnergyModel] = None,
        npu: Optional[NPUModel] = None,
        overhead: Optional[OffloadOverhead] = None,
        max_records: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.app = app
        self.backend = backend
        self.predictor = predictor
        self.config = config or RumbaConfig(scheme=predictor.name)
        if self.config.scheme != predictor.name:
            raise ConfigurationError(
                f"config scheme {self.config.scheme!r} does not match the "
                f"predictor {predictor.name!r}"
            )
        self.tuner = OnlineTuner(self.config)
        self.detection = DetectionModule(
            predictor,
            threshold=self.tuner.threshold,
            n_inputs=backend.topology.n_inputs,
        )
        self.recovery = RecoveryModule(app.exact)
        self.cost_model = CostModel(
            app, energy_model=energy_model, npu=npu, overhead=overhead
        )
        # Fig. 4: the accelerator configuration and the checker
        # coefficients travel over the same config queue at kernel launch.
        self.config_queue = ConfigQueue()
        self.config_queue.send(
            "accelerator", backend.network.get_flat_params()
        )
        if predictor.is_fitted:
            coefficients = predictor.coefficients()
            if coefficients:
                expected = predictor.coefficient_count()
                if len(coefficients) != expected:
                    raise ConfigurationError(
                        f"{predictor.name} ships {len(coefficients)} "
                        f"coefficients but declares {expected}"
                    )
                self.config_queue.send("checker", coefficients)
        if max_records is not None and max_records < 1:
            raise ConfigurationError("max_records must be >= 1")
        self.max_records = max_records
        self.records: MutableSequence[InvocationRecord] = (
            [] if max_records is None else deque(maxlen=max_records)
        )
        self.total_invocations = 0
        self._next_iteration_id = 0
        self.telemetry: Optional[Telemetry] = None
        if telemetry is None and ambient_telemetry_registry() is not None:
            telemetry = Telemetry(
                app=app.name,
                scheme=predictor.name,
                registry=ambient_telemetry_registry(),
            )
        if telemetry is not None:
            self.attach_telemetry(telemetry)

    def attach_telemetry(self, telemetry: Optional[Telemetry]) -> None:
        """Attach (or detach, with None) telemetry to the whole loop."""
        self.telemetry = telemetry
        self.detection.telemetry = telemetry
        self.recovery.telemetry = telemetry
        self.tuner.telemetry = telemetry
        if telemetry is not None:
            telemetry.on_threshold(self.tuner.threshold, 0)

    # ------------------------------------------------------------------ #
    # Execution                                                          #
    # ------------------------------------------------------------------ #
    def run_invocation(
        self, inputs: np.ndarray, measure_quality: bool = True
    ) -> InvocationRecord:
        """Run one accelerator invocation through detect-recover-tune.

        ``measure_quality=True`` additionally computes the exact outputs
        for the *whole* invocation to report measured output error — that
        is the experimenter's measurement, not something the deployed
        system would do.
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        n = inputs.shape[0]
        if n == 0:
            raise ConfigurationError("invocation needs at least one element")

        tel = self.telemetry
        with (tel.invocation(n) if tel is not None else _NOOP) as scope:
            with (scope.phase("accelerate") if scope else _NOOP):
                approx = self.backend(inputs)
                features = self.backend.features(inputs)

            # The experimenter's instrument, not a phase of the loop.
            true_errors = None
            exact = None
            if measure_quality or self.predictor.name == "Ideal":
                exact = self.app.exact(inputs)
                true_errors = self.app.element_errors(approx, exact)

            queue = RecoveryQueue(
                capacity=max(self.config.recovery_queue_capacity, n),
                strict=True,
            )
            with (scope.phase("detect") if scope else _NOOP):
                self.detection.threshold = self.tuner.threshold
                detection = self.detection.detect(
                    features=features,
                    approx_outputs=approx,
                    true_errors=true_errors,
                    recovery_queue=queue,
                    first_iteration_id=self._next_iteration_id,
                )
                self._next_iteration_id += n

                flagged_ids = queue.drain_flagged()
                bits = np.zeros(n, dtype=bool)
                if flagged_ids:
                    offsets = (
                        np.asarray(flagged_ids)
                        - (self._next_iteration_id - n)
                    )
                    bits[offsets] = True
            if tel is not None:
                tel.on_queue(
                    queue.stats.max_occupancy,
                    queue.capacity,
                    queue.stats.stall_events,
                )
                scope.annotate("detect", n_fired=int(detection.n_fired))

            with (scope.phase("recover") if scope else _NOOP):
                recovery = self.recovery.recover(inputs, approx, bits)
            if tel is not None:
                scope.annotate(
                    "recover", n_recovered=int(recovery.n_recovered)
                )

            with (scope.phase("tune") if scope else _NOOP):
                pipeline = simulate_pipeline(
                    bits,
                    accel_cycles_per_iteration=(
                        self.cost_model.npu.invocation_cycles(
                            self.backend.topology
                        )
                    ),
                    cpu_cycles_per_iteration=(
                        self.cost_model.cpu_iteration_cycles()
                    ),
                    detector_placement=self.config.detector_placement,
                    checker_cycles=self.detection.checker.check_cycles(),
                )
                costs = self.cost_model.whole_app_costs(
                    topology=self.backend.topology,
                    checker=self.detection.checker,
                    fix_fraction=recovery.recovered_fraction,
                    detector_placement=self.config.detector_placement,
                    observed_kernel_cycles=pipeline.makespan / n,
                )
                self.tuner.update(
                    InvocationFeedback(
                        fix_fraction=recovery.recovered_fraction,
                        cpu_kept_up=pipeline.cpu_kept_up,
                        cpu_utilization=pipeline.cpu_utilization,
                    )
                )
            if tel is not None:
                scope.annotate("tune", threshold=float(self.tuner.threshold))

            measured_error = None
            unchecked_error = None
            if measure_quality and exact is not None:
                measured_error = self.app.output_error(
                    recovery.merged_outputs, exact
                )
                unchecked_error = self.app.output_error(approx, exact)

            record = InvocationRecord(
                outputs=recovery.merged_outputs,
                detection=detection,
                recovery=recovery,
                pipeline=pipeline,
                costs=costs,
                measured_error=measured_error,
                unchecked_error=unchecked_error,
            )
            if scope:
                scope.observe_record(record)
        self.records.append(record)
        self.total_invocations += 1
        return record

    def run_stream(
        self, invocations: List[np.ndarray], measure_quality: bool = True
    ) -> List[InvocationRecord]:
        """Run a sequence of invocations (the online tuner adapts between)."""
        return [self.run_invocation(x, measure_quality) for x in invocations]

    # ------------------------------------------------------------------ #
    # Summaries                                                          #
    # ------------------------------------------------------------------ #
    @property
    def mean_measured_error(self) -> float:
        errors = [r.measured_error for r in self.records if r.measured_error is not None]
        if not errors:
            raise ConfigurationError("no measured invocations recorded")
        return float(np.mean(errors))

    @property
    def mean_fix_fraction(self) -> float:
        if not self.records:
            raise ConfigurationError("no invocations recorded")
        return float(np.mean([r.fix_fraction for r in self.records]))
