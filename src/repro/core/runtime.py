"""The Rumba runtime — the online half of Fig. 4, end to end.

:class:`RumbaSystem` drives one benchmark through the full loop for each
accelerator invocation:

1. the accelerator (NPU backend) produces approximate outputs,
2. the detection module scores every element and sets recovery bits in the
   recovery queue,
3. the CPU-side recovery module drains the queue, re-executes flagged
   iterations exactly and merges the results,
4. the pipeline model accounts the overlap timing, the cost model accounts
   energy, and
5. the online tuner adapts the threshold for the next invocation.

Construction from scratch is easiest via
:func:`repro.core.offline.prepare_system`, which runs both offline trainers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.apps.base import Application
from repro.approx.npu_backend import NPUBackend
from repro.core.config import RumbaConfig
from repro.core.costs import AppCosts, CostModel, OffloadOverhead
from repro.core.detection import DetectionModule, DetectionResult
from repro.core.pipeline import PipelineResult, simulate_pipeline
from repro.core.recovery import RecoveryModule, RecoveryResult
from repro.core.tuner import InvocationFeedback, OnlineTuner
from repro.errors import ConfigurationError
from repro.hardware.energy import EnergyModel
from repro.hardware.npu import NPUModel
from repro.hardware.queues import ConfigQueue, RecoveryQueue
from repro.predictors.base import ErrorPredictor

__all__ = ["RumbaSystem", "InvocationRecord"]


@dataclass
class InvocationRecord:
    """Everything observed during one accelerator invocation."""

    outputs: np.ndarray
    detection: DetectionResult
    recovery: RecoveryResult
    pipeline: PipelineResult
    costs: AppCosts
    measured_error: Optional[float] = None
    unchecked_error: Optional[float] = None

    @property
    def fix_fraction(self) -> float:
        return self.recovery.recovered_fraction


class RumbaSystem:
    """A benchmark wired into the full Rumba detection/recovery loop."""

    def __init__(
        self,
        app: Application,
        backend: NPUBackend,
        predictor: ErrorPredictor,
        config: Optional[RumbaConfig] = None,
        energy_model: Optional[EnergyModel] = None,
        npu: Optional[NPUModel] = None,
        overhead: Optional[OffloadOverhead] = None,
    ):
        self.app = app
        self.backend = backend
        self.predictor = predictor
        self.config = config or RumbaConfig(scheme=predictor.name)
        if self.config.scheme != predictor.name:
            raise ConfigurationError(
                f"config scheme {self.config.scheme!r} does not match the "
                f"predictor {predictor.name!r}"
            )
        self.tuner = OnlineTuner(self.config)
        self.detection = DetectionModule(
            predictor,
            threshold=self.tuner.threshold,
            n_inputs=backend.topology.n_inputs,
        )
        self.recovery = RecoveryModule(app.exact)
        self.cost_model = CostModel(
            app, energy_model=energy_model, npu=npu, overhead=overhead
        )
        # Fig. 4: the accelerator configuration and the checker
        # coefficients travel over the same config queue at kernel launch.
        self.config_queue = ConfigQueue()
        self.config_queue.send(
            "accelerator", backend.network.get_flat_params()
        )
        n_coeffs = predictor.coefficient_count() if predictor.is_fitted else 0
        if n_coeffs:
            self.config_queue.send("checker", [0.0] * n_coeffs)
        self.records: List[InvocationRecord] = []
        self._next_iteration_id = 0

    # ------------------------------------------------------------------ #
    # Execution                                                          #
    # ------------------------------------------------------------------ #
    def run_invocation(
        self, inputs: np.ndarray, measure_quality: bool = True
    ) -> InvocationRecord:
        """Run one accelerator invocation through detect-recover-tune.

        ``measure_quality=True`` additionally computes the exact outputs
        for the *whole* invocation to report measured output error — that
        is the experimenter's measurement, not something the deployed
        system would do.
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        n = inputs.shape[0]
        if n == 0:
            raise ConfigurationError("invocation needs at least one element")

        approx = self.backend(inputs)
        features = self.backend.features(inputs)

        true_errors = None
        exact = None
        if measure_quality or self.predictor.name == "Ideal":
            exact = self.app.exact(inputs)
            true_errors = self.app.element_errors(approx, exact)

        queue = RecoveryQueue(
            capacity=max(self.config.recovery_queue_capacity, n), strict=True
        )
        self.detection.threshold = self.tuner.threshold
        detection = self.detection.detect(
            features=features,
            approx_outputs=approx,
            true_errors=true_errors,
            recovery_queue=queue,
            first_iteration_id=self._next_iteration_id,
        )
        self._next_iteration_id += n

        flagged_ids = queue.drain_flagged()
        bits = np.zeros(n, dtype=bool)
        if flagged_ids:
            offsets = np.asarray(flagged_ids) - (self._next_iteration_id - n)
            bits[offsets] = True
        recovery = self.recovery.recover(inputs, approx, bits)

        pipeline = simulate_pipeline(
            bits,
            accel_cycles_per_iteration=self.cost_model.npu.invocation_cycles(
                self.backend.topology
            ),
            cpu_cycles_per_iteration=self.cost_model.cpu_iteration_cycles(),
            detector_placement=self.config.detector_placement,
            checker_cycles=self.detection.checker.check_cycles(),
        )
        costs = self.cost_model.whole_app_costs(
            topology=self.backend.topology,
            checker=self.detection.checker,
            fix_fraction=recovery.recovered_fraction,
            detector_placement=self.config.detector_placement,
            observed_kernel_cycles=pipeline.makespan / n,
        )

        measured_error = None
        unchecked_error = None
        if measure_quality and exact is not None:
            measured_error = self.app.output_error(recovery.merged_outputs, exact)
            unchecked_error = self.app.output_error(approx, exact)

        self.tuner.update(
            InvocationFeedback(
                fix_fraction=recovery.recovered_fraction,
                cpu_kept_up=pipeline.cpu_kept_up,
                cpu_utilization=pipeline.cpu_utilization,
            )
        )
        record = InvocationRecord(
            outputs=recovery.merged_outputs,
            detection=detection,
            recovery=recovery,
            pipeline=pipeline,
            costs=costs,
            measured_error=measured_error,
            unchecked_error=unchecked_error,
        )
        self.records.append(record)
        return record

    def run_stream(
        self, invocations: List[np.ndarray], measure_quality: bool = True
    ) -> List[InvocationRecord]:
        """Run a sequence of invocations (the online tuner adapts between)."""
        return [self.run_invocation(x, measure_quality) for x in invocations]

    # ------------------------------------------------------------------ #
    # Summaries                                                          #
    # ------------------------------------------------------------------ #
    @property
    def mean_measured_error(self) -> float:
        errors = [r.measured_error for r in self.records if r.measured_error is not None]
        if not errors:
            raise ConfigurationError("no measured invocations recorded")
        return float(np.mean(errors))

    @property
    def mean_fix_fraction(self) -> float:
        if not self.records:
            raise ConfigurationError("no invocations recorded")
        return float(np.mean([r.fix_fraction for r in self.records]))
