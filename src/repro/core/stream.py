"""Streaming quality management with drift detection.

Challenge II warns that "profiling techniques do not work efficiently if
the profiling data is not representative of all possible inputs": a
checker trained on one input population can quietly degrade when the
deployment's inputs drift away from it.

:class:`QualityManagedStream` wraps a :class:`~repro.core.runtime.RumbaSystem`
for long-running deployments: it feeds invocations through the runtime,
keeps windowed statistics, and raises a *drift flag* when the detector's
observable behaviour (its fire rate) departs from the band established
during a calibration period.  A drifted checker is exactly one whose
training data stopped being representative — the flag tells the host to
retrain the offline models (Fig. 4's trainers) on fresh data.

Drift is judged only from quantities the deployed system can observe
(scores and fire rates), never from ground-truth errors.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import numpy as np

from repro.core.runtime import InvocationRecord, RumbaSystem
from repro.errors import ConfigurationError

__all__ = ["DriftDetector", "StreamStatus", "QualityManagedStream"]


class DriftDetector:
    """Flags shifts in the detector's fire rate.

    The first ``calibration_invocations`` establish a reference band
    (mean ± ``tolerance_sigmas`` standard deviations, clamped between
    ``min_band`` and ``max_band`` — short calibrations estimate the spread
    noisily in both directions); afterwards, an exponentially smoothed
    fire rate outside the band raises the drift flag.
    """

    def __init__(
        self,
        calibration_invocations: int = 10,
        tolerance_sigmas: float = 4.0,
        min_band: float = 0.05,
        max_band: float = 0.25,
        smoothing: float = 0.3,
    ):
        if calibration_invocations < 2:
            raise ConfigurationError("need at least 2 calibration invocations")
        if tolerance_sigmas <= 0 or min_band < 0:
            raise ConfigurationError("tolerance must be positive")
        if max_band < min_band:
            raise ConfigurationError("max_band must be >= min_band")
        if not (0.0 < smoothing <= 1.0):
            raise ConfigurationError("smoothing must be in (0, 1]")
        self.calibration_invocations = calibration_invocations
        self.tolerance_sigmas = tolerance_sigmas
        self.min_band = min_band
        self.max_band = max_band
        self.smoothing = smoothing
        self._calibration: List[float] = []
        self._smoothed: Optional[float] = None
        self.reference_mean: Optional[float] = None
        self.reference_band: Optional[float] = None

    @property
    def is_calibrated(self) -> bool:
        return self.reference_mean is not None

    def observe(self, fire_rate: float) -> bool:
        """Feed one invocation's fire rate; returns True when drifted."""
        if not (0.0 <= fire_rate <= 1.0):
            raise ConfigurationError("fire_rate must be in [0, 1]")
        if not self.is_calibrated:
            self._calibration.append(fire_rate)
            if len(self._calibration) >= self.calibration_invocations:
                values = np.asarray(self._calibration)
                self.reference_mean = float(values.mean())
                self.reference_band = float(np.clip(
                    self.tolerance_sigmas * float(values.std()),
                    self.min_band, self.max_band,
                ))
                self._smoothed = self.reference_mean
            return False
        self._smoothed = (
            self.smoothing * fire_rate
            + (1.0 - self.smoothing) * self._smoothed
        )
        return abs(self._smoothed - self.reference_mean) > self.reference_band

    def reset(self) -> None:
        """Forget the calibration (call after retraining)."""
        self._calibration = []
        self._smoothed = None
        self.reference_mean = None
        self.reference_band = None


@dataclass
class StreamStatus:
    """Windowed view of a managed stream."""

    n_invocations: int
    mean_fix_fraction: float
    mean_threshold: float
    drifted: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        flag = " DRIFT" if self.drifted else ""
        return (
            f"stream[{self.n_invocations} inv, fix "
            f"{self.mean_fix_fraction * 100:.1f}%]{flag}"
        )


class QualityManagedStream:
    """Long-running deployment wrapper around a RumbaSystem."""

    def __init__(
        self,
        system: RumbaSystem,
        drift_detector: Optional[DriftDetector] = None,
        window: int = 20,
    ):
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self.system = system
        self.drift = drift_detector or DriftDetector()
        self.window = window
        self._recent: Deque[InvocationRecord] = deque(maxlen=window)
        self.drift_flagged_at: List[int] = []
        self._count = 0

    def feed(self, inputs: np.ndarray) -> InvocationRecord:
        """Process one invocation; updates drift state."""
        record = self.system.run_invocation(inputs, measure_quality=False)
        self._recent.append(record)
        self._count += 1
        drifted_now = self.drift.observe(record.detection.fire_fraction)
        if drifted_now:
            self.drift_flagged_at.append(self._count)
        telemetry = self.system.telemetry
        if telemetry is not None:
            telemetry.on_drift(drifted_now, self.needs_retraining)
        return record

    @property
    def needs_retraining(self) -> bool:
        """True once drift has been flagged and not yet acknowledged."""
        return bool(self.drift_flagged_at)

    def acknowledge_retraining(self) -> None:
        """Clear drift state after the offline trainers have been re-run."""
        self.drift_flagged_at = []
        self.drift.reset()

    def status(self) -> StreamStatus:
        if not self._recent:
            raise ConfigurationError("no invocations processed yet")
        return StreamStatus(
            n_invocations=self._count,
            mean_fix_fraction=float(
                np.mean([r.fix_fraction for r in self._recent])
            ),
            mean_threshold=float(
                np.mean([r.detection.threshold for r in self._recent])
            ),
            drifted=self.needs_retraining,
        )
