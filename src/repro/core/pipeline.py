"""Pipelined CPU/accelerator execution model (paper Fig. 8 and Fig. 18).

The accelerator streams through iterations while the CPU re-computes
flagged iterations in parallel: iteration ``i``'s recovery bit becomes
available when the accelerator finishes ``i`` (detector placement 2 — the
parallel configuration the paper evaluates; with placement 1 the verdict is
available before the accelerator even starts).  The CPU serves flagged
iterations FIFO.

The simulator reports the makespan, CPU/accelerator busy time, whether the
CPU kept up, and an activity trace (the bottom half of Fig. 18).  The
paper's keep-up rule of thumb falls out: with an accelerator ``S``x faster
than the CPU per iteration, the CPU sustains a fix rate of ``1/S`` without
extending the makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PipelineResult", "simulate_pipeline", "max_keepup_fix_fraction"]


@dataclass
class PipelineResult:
    """Timing outcome of one pipelined invocation.

    All times are in cycles.  ``cpu_segments`` holds ``(start, end,
    iteration_id)`` for each re-execution, in service order.
    """

    n_iterations: int
    n_recovered: int
    accel_finish: float
    makespan: float
    cpu_busy: float
    cpu_service_cycles: float = 0.0
    # Vectorized segment representation (start/end times and iteration ids,
    # service order); the tuple list is materialized lazily on first access
    # because the serving hot path never reads it.
    _seg_starts: Optional[np.ndarray] = field(default=None, repr=False)
    _seg_ends: Optional[np.ndarray] = field(default=None, repr=False)
    _seg_ids: Optional[np.ndarray] = field(default=None, repr=False)
    _segments: Optional[List[Tuple[float, float, int]]] = field(
        default=None, repr=False
    )

    @property
    def cpu_segments(self) -> List[Tuple[float, float, int]]:
        """``(start, end, iteration_id)`` per re-execution, in service order."""
        if self._segments is None:
            if self._seg_starts is None:
                self._segments = []
            else:
                self._segments = list(
                    zip(
                        self._seg_starts.tolist(),
                        self._seg_ends.tolist(),
                        self._seg_ids.tolist(),
                    )
                )
        return self._segments

    @property
    def cpu_kept_up(self) -> bool:
        """True when recovery throughput matched the accelerator.

        The recovery of the very last flagged iteration necessarily drains
        *after* the accelerator's final iteration (its verdict only arrives
        then), so keep-up is judged with a small drain allowance (one CPU
        service time, or 0.5% of the run for long invocations) — the
        paper's "keep up with the accelerator" is a throughput statement
        (Sec. 3.3).
        """
        allowance = max(self.cpu_service_cycles, 0.005 * self.accel_finish)
        return self.makespan <= self.accel_finish + allowance + 1e-9

    @property
    def cpu_utilization(self) -> float:
        """CPU busy fraction over the makespan."""
        return self.cpu_busy / self.makespan if self.makespan > 0 else 0.0

    @property
    def slowdown_vs_accelerator(self) -> float:
        """Makespan normalized to the pure accelerator time (1.0 = kept up)."""
        return self.makespan / self.accel_finish if self.accel_finish > 0 else 1.0

    def activity_trace(self, resolution: int = 1) -> np.ndarray:
        """0/1 CPU-activity samples over the makespan (Fig. 18, bottom).

        ``resolution`` is the sample spacing in cycles.
        """
        if resolution <= 0:
            raise ConfigurationError("resolution must be positive")
        n_samples = int(np.ceil(self.makespan / resolution)) + 1
        trace = np.zeros(n_samples, dtype=int)
        if self._seg_starts is not None:
            for start, end in zip(self._seg_starts, self._seg_ends):
                lo = int(start // resolution)
                hi = int(np.ceil(end / resolution))
                trace[lo:hi] = 1
        return trace


def simulate_pipeline(
    recovery_bits: np.ndarray,
    accel_cycles_per_iteration: float,
    cpu_cycles_per_iteration: float,
    detector_placement: int = 2,
    checker_cycles: float = 0.0,
) -> PipelineResult:
    """Simulate one invocation's CPU/accelerator overlap.

    Parameters
    ----------
    recovery_bits:
        Bool per iteration; True means the CPU must re-execute it.
    accel_cycles_per_iteration, cpu_cycles_per_iteration:
        Per-iteration service times of the two engines.
    detector_placement:
        Sec. 3.5 configuration.  With 1 the checker *precedes* each
        accelerator invocation, adding ``checker_cycles`` of latency per
        iteration to the accelerator stream but making verdicts available
        at iteration start; with 2 (default) checking is parallel and
        verdicts arrive when the accelerator finishes the iteration.
    """
    bits = np.asarray(recovery_bits, dtype=bool).ravel()
    n = bits.shape[0]
    if n == 0:
        return PipelineResult(0, 0, 0.0, 0.0, 0.0)
    if accel_cycles_per_iteration <= 0 or cpu_cycles_per_iteration <= 0:
        raise ConfigurationError("cycle counts must be positive")
    if detector_placement not in (1, 2):
        raise ConfigurationError("detector_placement must be 1 or 2")

    if detector_placement == 1:
        effective_accel = accel_cycles_per_iteration + checker_cycles
        # Verdict for iteration i is ready when its check completes,
        # i.e. before the accelerator processes it.
        arrivals = np.arange(n) * effective_accel + checker_cycles
    else:
        effective_accel = accel_cycles_per_iteration
        arrivals = (np.arange(n) + 1) * effective_accel

    accel_finish = n * effective_accel
    flagged = np.flatnonzero(bits)
    k = flagged.size
    cpu = cpu_cycles_per_iteration
    if k == 0:
        return PipelineResult(
            n_iterations=n,
            n_recovered=0,
            accel_finish=accel_finish,
            makespan=accel_finish,
            cpu_busy=0.0,
            cpu_service_cycles=cpu,
        )
    # The FIFO recurrence  end_i = max(arrival_i, end_{i-1}) + cpu  unrolls
    # to  end_i = (i+1)*cpu + max_{j<=i}(arrival_j - j*cpu), which is a
    # running maximum — one `np.maximum.accumulate` instead of a Python
    # loop over every flagged iteration.
    arr = arrivals[flagged]
    rank = np.arange(k, dtype=float)
    ends = np.maximum.accumulate(arr - rank * cpu) + (rank + 1.0) * cpu
    starts = ends - cpu
    makespan = max(accel_finish, float(ends[-1]))
    return PipelineResult(
        n_iterations=n,
        n_recovered=k,
        accel_finish=accel_finish,
        makespan=makespan,
        cpu_busy=k * cpu,
        cpu_service_cycles=cpu,
        _seg_starts=starts,
        _seg_ends=ends,
        _seg_ids=flagged,
    )


def max_keepup_fix_fraction(
    accel_cycles_per_iteration: float, cpu_cycles_per_iteration: float
) -> float:
    """Largest fix fraction the CPU sustains without extending the makespan.

    Equals the inverse of the accelerator's per-iteration speedup (Sec. 3.3:
    "the CPU can recompute 50% of the output elements, assuming a 2x gain"),
    capped at 1.
    """
    if accel_cycles_per_iteration <= 0 or cpu_cycles_per_iteration <= 0:
        raise ConfigurationError("cycle counts must be positive")
    return min(accel_cycles_per_iteration / cpu_cycles_per_iteration, 1.0)
