"""Quality-sampling monitor — the Green/SAGE-style baseline (paper Sec. 6).

Prior frameworks check output quality *once every N invocations*: the
checked invocation is run both exactly and approximately, the qualities
are compared, and a failing invocation is recovered (and/or the
approximation recalibrated).  The paper's Challenge II/III argument is
that input-dependent quality slips through the unchecked N-1 invocations.

:class:`QualitySamplingMonitor` implements that policy over a stream of
invocation errors so experiments can quantify exactly what sampling
misses relative to Rumba's continuous checking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SamplingReport", "QualitySamplingMonitor"]


@dataclass
class SamplingReport:
    """Outcome of sampling-based monitoring over a stream.

    ``errors_after`` holds the per-invocation error after any recoveries;
    a *bad* invocation is one whose approximate error exceeded the target.
    """

    errors_before: np.ndarray
    errors_after: np.ndarray
    checked: np.ndarray        # bool per invocation
    recovered: np.ndarray      # bool per invocation
    target_error: float

    @property
    def n_invocations(self) -> int:
        return int(self.errors_before.size)

    @property
    def n_checked(self) -> int:
        return int(self.checked.sum())

    @property
    def n_recovered(self) -> int:
        return int(self.recovered.sum())

    @property
    def bad_invocations(self) -> np.ndarray:
        return self.errors_before > self.target_error

    @property
    def n_missed_bad(self) -> int:
        """Bad invocations that sailed through unchecked (the paper's
        Challenge II failure mode)."""
        return int((self.bad_invocations & ~self.checked).sum())

    @property
    def miss_rate(self) -> float:
        n_bad = int(self.bad_invocations.sum())
        return self.n_missed_bad / n_bad if n_bad else 0.0

    @property
    def mean_error_after(self) -> float:
        return float(self.errors_after.mean())

    @property
    def max_error_after(self) -> float:
        return float(self.errors_after.max())

    @property
    def exact_reexecution_fraction(self) -> float:
        """Fraction of invocations fully re-run (checks + recoveries both
        cost one exact execution)."""
        return (self.n_checked + 0.0) / self.n_invocations


class QualitySamplingMonitor:
    """Check quality once every ``check_every_n`` invocations.

    A checked invocation costs one exact execution (to measure quality);
    when it fails the target, its exact result is committed (recovery is
    free — the exact output already exists).  Unchecked invocations are
    never examined.
    """

    def __init__(self, check_every_n: int, target_error: float,
                 phase: int = 0):
        if check_every_n < 1:
            raise ConfigurationError("check_every_n must be >= 1")
        if target_error < 0:
            raise ConfigurationError("target_error must be >= 0")
        self.check_every_n = check_every_n
        self.target_error = target_error
        self.phase = phase % check_every_n

    def process_stream(self, invocation_errors: Sequence[float]) -> SamplingReport:
        """Apply the sampling policy to a stream of approximate errors."""
        errors = np.asarray(invocation_errors, dtype=float).ravel()
        if errors.size == 0:
            raise ConfigurationError("empty invocation stream")
        if np.any(errors < 0):
            raise ConfigurationError("invocation errors must be >= 0")
        indices = np.arange(errors.size)
        checked = (indices % self.check_every_n) == self.phase
        recovered = checked & (errors > self.target_error)
        after = errors.copy()
        after[recovered] = 0.0
        return SamplingReport(
            errors_before=errors,
            errors_after=after,
            checked=checked,
            recovered=recovered,
            target_error=self.target_error,
        )
