"""Online tuning of the detection threshold (paper Sec. 3.4).

The tuning threshold controls how many checks fire and therefore how many
iterations are re-executed.  The tuner adjusts it between invocations:

* **TOQ mode** — the threshold is held at the user's per-element error
  budget: every element whose *predicted* error exceeds the budget is
  recovered, so all elements are pushed above the target output quality.
* **Energy mode** — the user gives an iteration (energy) budget per
  invocation; the threshold is raised after an over-budget invocation and
  lowered after an under-budget one, converging on the largest fix rate
  the budget allows.
* **Quality mode** — maximize fixes while the CPU keeps up with the
  accelerator: if recovery finished early (CPU under-utilized), lower the
  threshold to fix more next time; if the CPU fell behind, raise it.

Threshold moves are multiplicative (``threshold_gain``), which adapts
quickly across decades of score scales and settles geometrically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import RumbaConfig, TunerMode
from repro.errors import ConfigurationError

__all__ = ["OnlineTuner", "InvocationFeedback"]

_MIN_THRESHOLD = 1e-9


@dataclass
class InvocationFeedback:
    """What the runtime observed during one invocation.

    Attributes
    ----------
    fix_fraction:
        Fraction of iterations actually re-executed.
    cpu_kept_up:
        Whether recovery finished within the accelerator's makespan.
    cpu_utilization:
        CPU busy fraction during the invocation.
    """

    fix_fraction: float
    cpu_kept_up: bool = True
    cpu_utilization: float = 0.0


class OnlineTuner:
    """Per-invocation threshold controller."""

    def __init__(self, config: RumbaConfig):
        self.config = config
        if config.mode == TunerMode.TOQ:
            # The dynamic check compares *predicted error* against the
            # element error budget directly.
            self.threshold = config.target_output_error
        else:
            self.threshold = config.initial_threshold
        self.history: List[float] = [self.threshold]
        self._gain = config.threshold_gain
        self._last_direction = 0
        self._degradation_level = 0
        # Optional observability hook (set via RumbaSystem.attach_telemetry).
        self.telemetry = None
        # Optional degradation listener ``level -> None`` (the ensemble
        # router biases toward cheap members while degraded; set by
        # RumbaSystem, rebound after unpickling).
        self.on_degradation = None

    def __getstate__(self) -> dict:
        # Telemetry binds to the parent process's registry; strip it so
        # the tuner survives the serving layer's fork/spawn boundary.
        # The degradation listener closes over the owning system and is
        # rebound by RumbaSystem.__setstate__.
        state = self.__dict__.copy()
        state["telemetry"] = None
        state["on_degradation"] = None
        return state

    @property
    def mode(self) -> TunerMode:
        return self.config.mode

    def update(self, feedback: InvocationFeedback) -> float:
        """Adapt the threshold after an invocation; returns the new value."""
        if not (0.0 <= feedback.fix_fraction <= 1.0):
            raise ConfigurationError("fix_fraction must be in [0, 1]")
        direction = 0  # +1 raises the threshold (fewer fixes), -1 lowers it
        if self.mode == TunerMode.TOQ:
            # Fixed: the threshold *is* the user's error budget.
            pass
        elif self.mode == TunerMode.ENERGY:
            budget = self.config.iteration_budget_fraction
            if feedback.fix_fraction > budget:
                direction = +1              # over budget: fix fewer
            elif feedback.fix_fraction < budget:
                direction = -1              # headroom: fix more
        else:  # QUALITY
            if not feedback.cpu_kept_up:
                # CPU still had iterations when the accelerator finished.
                direction = +1
            elif feedback.cpu_utilization < 0.95:
                # CPU idle time left: it can fix more.
                direction = -1
        if direction != 0:
            # Shrink the step whenever the adjustment direction flips so
            # the controller settles instead of oscillating around the
            # target; a floor keeps it able to track drifting workloads.
            if self._last_direction and direction != self._last_direction:
                self._gain = max(1.0 + (self._gain - 1.0) * 0.5, 1.03)
            self.threshold *= self._gain ** direction
            self._last_direction = direction
        self.threshold = max(self.threshold, _MIN_THRESHOLD)
        self.history.append(self.threshold)
        if self.telemetry is not None:
            self.telemetry.on_threshold(self.threshold, direction)
        return self.threshold

    # ------------------------------------------------------------------ #
    # Backpressure degradation (serving layer)                           #
    # ------------------------------------------------------------------ #
    @property
    def degradation_level(self) -> int:
        """How many un-relaxed backpressure degradations are in effect."""
        return self._degradation_level

    def degrade(self, factor: float | None = None) -> float:
        """Raise the threshold in response to external backpressure.

        Unlike :meth:`update`, this applies in every tuner mode — when the
        CPU-side recovery backlog grows faster than it drains, fixing
        *fewer* elements is the only lever that sheds recovery work, even
        in TOQ mode where the threshold is normally pinned to the error
        budget.  Each call is one degradation step; :meth:`relax` undoes
        one step.  Returns the new threshold.
        """
        factor = self.config.threshold_gain if factor is None else factor
        if factor <= 1.0:
            raise ConfigurationError("degrade factor must be > 1")
        self.threshold *= factor
        self._degradation_level += 1
        self.history.append(self.threshold)
        if self.telemetry is not None:
            self.telemetry.on_threshold(self.threshold, +1)
        if self.on_degradation is not None:
            self.on_degradation(self._degradation_level)
        return self.threshold

    def relax(self, factor: float | None = None) -> float:
        """Undo one :meth:`degrade` step once the backlog drains.

        A no-op when no degradation is in effect, so callers can invoke it
        opportunistically on every quiet period.  Returns the threshold.
        """
        if self._degradation_level == 0:
            return self.threshold
        factor = self.config.threshold_gain if factor is None else factor
        if factor <= 1.0:
            raise ConfigurationError("relax factor must be > 1")
        self.threshold = max(self.threshold / factor, _MIN_THRESHOLD)
        self._degradation_level -= 1
        self.history.append(self.threshold)
        if self.telemetry is not None:
            self.telemetry.on_threshold(self.threshold, -1)
        if self.on_degradation is not None:
            self.on_degradation(self._degradation_level)
        return self.threshold
