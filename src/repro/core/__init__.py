"""Rumba core: detection, recovery, online tuning, the pipelined execution
model, the detector-placement trade-off and the end-to-end runtime."""

from repro.core.config import RumbaConfig, TunerMode
from repro.core.costs import AppCosts, CostModel, OffloadOverhead
from repro.core.detection import DetectionModule, DetectionResult
from repro.core.offline import clear_cache, prepare_backend, prepare_system
from repro.core.pipeline import (
    PipelineResult,
    max_keepup_fix_fraction,
    simulate_pipeline,
)
from repro.core.placement import PlacementCosts, evaluate_placement
from repro.core.recovery import (
    PurityReport,
    RecoveryModule,
    RecoveryResult,
    merge_outputs,
    verify_purity,
)
from repro.core.purity_survey import (
    PATTERN_CATALOG,
    KernelPattern,
    PuritySurvey,
    survey_purity,
)
from repro.core.runtime import InvocationRecord, PendingInvocation, RumbaSystem
from repro.core.sampling_monitor import QualitySamplingMonitor, SamplingReport
from repro.core.stream import DriftDetector, QualityManagedStream, StreamStatus
from repro.core.tuner import InvocationFeedback, OnlineTuner

__all__ = [
    "RumbaConfig",
    "TunerMode",
    "DetectionModule",
    "DetectionResult",
    "RecoveryModule",
    "RecoveryResult",
    "merge_outputs",
    "verify_purity",
    "PurityReport",
    "OnlineTuner",
    "InvocationFeedback",
    "PipelineResult",
    "simulate_pipeline",
    "max_keepup_fix_fraction",
    "PlacementCosts",
    "evaluate_placement",
    "AppCosts",
    "CostModel",
    "OffloadOverhead",
    "RumbaSystem",
    "InvocationRecord",
    "PendingInvocation",
    "prepare_system",
    "prepare_backend",
    "clear_cache",
    "KernelPattern",
    "PATTERN_CATALOG",
    "PuritySurvey",
    "survey_purity",
    "QualitySamplingMonitor",
    "SamplingReport",
    "DriftDetector",
    "QualityManagedStream",
    "StreamStatus",
]
