"""The detection module (paper Sec. 3.2, the accelerator-side half of Fig. 4).

For every output element the detection module computes the predictor's
score and fires a check when the score exceeds the tuning threshold; firing
sets the element's *recovery bit* in the recovery queue.  The module also
keeps the statistics the evaluation needs (fire counts, score traces) and
knows its own hardware cost via :class:`CheckerModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.checker_hw import CheckerModel
from repro.hardware.queues import RecoveryQueue
from repro.predictors.base import ErrorPredictor

__all__ = ["DetectionModule", "DetectionResult"]


@dataclass
class DetectionResult:
    """Outcome of running detection over one accelerator invocation."""

    scores: np.ndarray
    recovery_bits: np.ndarray  # bool per element
    threshold: float

    @property
    def n_elements(self) -> int:
        return int(self.scores.shape[0])

    @property
    def n_fired(self) -> int:
        return int(self.recovery_bits.sum())

    @property
    def fire_fraction(self) -> float:
        return self.n_fired / self.n_elements if self.n_elements else 0.0


class DetectionModule:
    """Continuous light-weight checking beside the accelerator.

    Parameters
    ----------
    predictor:
        The fitted error predictor realizing the checker.
    threshold:
        Initial tuning threshold on scores (updated by the online tuner).
    n_inputs:
        Kernel input width (for the linear checker's hardware cost).
    """

    def __init__(
        self,
        predictor: ErrorPredictor,
        threshold: float,
        n_inputs: int = 1,
    ):
        if threshold < 0.0:
            raise ConfigurationError("threshold must be >= 0")
        self.predictor = predictor
        self.threshold = float(threshold)
        tree_depth = getattr(predictor, "max_depth", 7)
        self.checker = CheckerModel(
            kind=predictor.checker_kind,
            n_inputs=max(n_inputs, 1),
            tree_depth=tree_depth,
        )
        self.total_checks = 0
        self.total_fires = 0
        # Per-group fire counters, populated when callers pass group ids
        # to detect_into (the ensemble runtime groups by routed member).
        self.group_fires = np.zeros(0, dtype=np.int64)
        # Optional observability hook (set via RumbaSystem.attach_telemetry).
        self.telemetry = None

    def __getstate__(self) -> dict:
        # Telemetry binds to the parent process's registry; strip it so
        # the module survives the serving layer's fork/spawn boundary.
        state = self.__dict__.copy()
        state["telemetry"] = None
        return state

    def detect(
        self,
        features: Optional[np.ndarray] = None,
        approx_outputs: Optional[np.ndarray] = None,
        true_errors: Optional[np.ndarray] = None,
        recovery_queue: Optional[RecoveryQueue] = None,
        first_iteration_id: int = 0,
    ) -> DetectionResult:
        """Score one invocation's elements and set recovery bits.

        When ``recovery_queue`` is provided, one ``(iteration_id, bit)``
        entry per element is pushed in iteration order — the channel the
        CPU-side recovery module drains.
        """
        result = self.detect_into(
            features=features,
            approx_outputs=approx_outputs,
            true_errors=true_errors,
        )
        if recovery_queue is not None:
            bits = result.recovery_bits
            recovery_queue.push_many(
                range(first_iteration_id, first_iteration_id + bits.shape[0]),
                bits,
            )
        return result

    def detect_into(
        self,
        features: Optional[np.ndarray] = None,
        approx_outputs: Optional[np.ndarray] = None,
        true_errors: Optional[np.ndarray] = None,
        bits_out: Optional[np.ndarray] = None,
        group_ids: Optional[np.ndarray] = None,
    ) -> DetectionResult:
        """Score one invocation, thresholding into ``bits_out`` if given.

        The serving fast path owns the bits vector directly (no
        ``RecoveryQueue`` round trip), so it can hand detection a
        caller-provided boolean buffer and avoid the per-invocation
        allocation.  Numerically identical to :meth:`detect`: a bit is set
        when the score exceeds the threshold or is non-finite.

        ``group_ids`` (one small non-negative int per element, e.g. the
        routed ensemble-member index) additionally accumulates fires into
        :attr:`group_fires`, so per-member fire rates are observable
        without a second pass over the bits.
        """
        scores = np.asarray(
            self.predictor.scores(
                features=features,
                approx_outputs=approx_outputs,
                true_errors=true_errors,
            ),
            dtype=float,
        ).ravel()
        n = scores.shape[0]
        if bits_out is None:
            bits = np.empty(n, dtype=bool)
        else:
            if bits_out.shape != (n,) or bits_out.dtype != np.bool_:
                raise ConfigurationError(
                    f"bits_out must be a bool vector of shape ({n},)"
                )
            bits = bits_out
        np.greater(scores, self.threshold, out=bits)
        # A non-finite score means the accelerator (or the checker datapath)
        # produced garbage for that element; a hardware checker's sanity
        # logic fires unconditionally on such values, and so do we.
        finite = np.isfinite(scores)
        if not finite.all():
            np.logical_not(finite, out=finite)
            np.logical_or(bits, finite, out=bits)
        n_fired = int(bits.sum())
        self.total_checks += n
        self.total_fires += n_fired
        if group_ids is not None and n_fired:
            group_ids = np.asarray(group_ids).ravel()
            fired = group_ids[bits]
            top = int(fired.max()) + 1
            if top > self.group_fires.shape[0]:
                grown = np.zeros(top, dtype=np.int64)
                grown[: self.group_fires.shape[0]] = self.group_fires
                self.group_fires = grown
            np.add.at(self.group_fires, fired, 1)
        if self.telemetry is not None:
            self.telemetry.on_detection(n, n_fired)
        return DetectionResult(scores=scores, recovery_bits=bits,
                               threshold=self.threshold)

    @property
    def lifetime_fire_fraction(self) -> float:
        """Fraction of all checks that have fired so far."""
        return self.total_fires / self.total_checks if self.total_checks else 0.0

    def check_energy_pj(self, n_elements: int) -> float:
        """Checker energy for one invocation of ``n_elements`` checks."""
        return self.checker.check_energy_pj() * n_elements

    def check_cycles_per_element(self) -> float:
        return self.checker.check_cycles()
