"""Configuration objects for the Rumba runtime."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError

__all__ = ["TunerMode", "RumbaConfig"]


class TunerMode(Enum):
    """Online tuning modes (paper Sec. 3.4)."""

    TOQ = "toq"          # user specifies a target output quality
    ENERGY = "energy"    # user specifies an energy (iteration) budget
    QUALITY = "quality"  # maximize quality while the CPU keeps up


@dataclass
class RumbaConfig:
    """Runtime configuration of a Rumba system.

    Attributes
    ----------
    scheme:
        Detection scheme name ("linearErrors", "treeErrors", "EMA",
        "Ideal", "Random", "Uniform").
    mode:
        Online tuning mode.
    target_output_quality:
        TOQ mode: target quality in (0, 1]; 0.9 is the paper's setting
        (90% quality == 10% output error).
    iteration_budget_fraction:
        ENERGY mode: fraction of iterations the CPU may re-execute per
        invocation.
    initial_threshold:
        Starting tuning threshold on predictor scores.
    threshold_gain:
        Multiplicative step of the per-invocation threshold adaptation.
    recovery_queue_capacity:
        Depth of the recovery-bit queue between accelerator and CPU.
    detector_placement:
        Sec. 3.5: ``2`` (parallel with the accelerator, the paper's
        choice) or ``1`` (before the accelerator).
    """

    scheme: str = "treeErrors"
    mode: TunerMode = TunerMode.TOQ
    target_output_quality: float = 0.90
    iteration_budget_fraction: float = 0.25
    initial_threshold: float = 0.1
    threshold_gain: float = 1.25
    recovery_queue_capacity: int = 4096
    detector_placement: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if not (0.0 < self.target_output_quality <= 1.0):
            raise ConfigurationError("target_output_quality must be in (0, 1]")
        if not (0.0 <= self.iteration_budget_fraction <= 1.0):
            raise ConfigurationError(
                "iteration_budget_fraction must be in [0, 1]"
            )
        if self.initial_threshold < 0.0:
            raise ConfigurationError("initial_threshold must be >= 0")
        if self.threshold_gain <= 1.0:
            raise ConfigurationError("threshold_gain must be > 1")
        if self.recovery_queue_capacity <= 0:
            raise ConfigurationError("recovery_queue_capacity must be positive")
        if self.detector_placement not in (1, 2):
            raise ConfigurationError("detector_placement must be 1 or 2")

    @property
    def target_output_error(self) -> float:
        """The error budget implied by the target quality."""
        return 1.0 - self.target_output_quality
