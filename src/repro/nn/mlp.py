"""Multi-layer perceptron used as the functional model of the NPU.

The NPU accelerator executes a small MLP in place of an annotated kernel.
Table 1 of the paper gives the per-benchmark topologies in the familiar
``in->h1->h2->out`` notation (e.g. ``6->8->4->1`` for kmeans); this module
parses that notation, evaluates the network, and exposes the operation counts
(multiply-adds, activations) that the hardware cost model charges for.

The implementation is deliberately minimal: dense layers, sigmoid hidden
units, linear output — exactly what an 8-PE NPU schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.activations import Activation, get_activation

__all__ = ["Topology", "MLP"]


@dataclass(frozen=True)
class Topology:
    """An MLP topology in the paper's ``in->h->...->out`` notation.

    Attributes
    ----------
    sizes:
        Layer widths including input and output, e.g. ``(6, 8, 4, 1)``.
    """

    sizes: tuple

    def __post_init__(self) -> None:
        if len(self.sizes) < 2:
            raise ConfigurationError(
                f"topology needs at least input and output layers, got {self.sizes}"
            )
        if any(int(s) <= 0 for s in self.sizes):
            raise ConfigurationError(f"layer sizes must be positive, got {self.sizes}")
        object.__setattr__(self, "sizes", tuple(int(s) for s in self.sizes))

    @classmethod
    def parse(cls, spec: str) -> "Topology":
        """Parse ``"6->8->4->1"`` into a :class:`Topology`."""
        try:
            sizes = tuple(int(part.strip()) for part in spec.split("->"))
        except ValueError as exc:
            raise ConfigurationError(f"malformed topology spec {spec!r}") from exc
        return cls(sizes)

    @property
    def n_inputs(self) -> int:
        return self.sizes[0]

    @property
    def n_outputs(self) -> int:
        return self.sizes[-1]

    @property
    def hidden_sizes(self) -> tuple:
        return self.sizes[1:-1]

    @property
    def n_weights(self) -> int:
        """Total number of weights including biases."""
        return sum((a + 1) * b for a, b in zip(self.sizes[:-1], self.sizes[1:]))

    @property
    def n_multiply_adds(self) -> int:
        """Multiply-add operations per single forward evaluation."""
        return sum(a * b for a, b in zip(self.sizes[:-1], self.sizes[1:]))

    @property
    def n_neurons(self) -> int:
        """Number of non-input neurons (each costs one activation evaluation)."""
        return sum(self.sizes[1:])

    def __str__(self) -> str:
        return "->".join(str(s) for s in self.sizes)


class MLP:
    """A dense feed-forward network with per-layer weights and biases.

    Parameters
    ----------
    topology:
        A :class:`Topology` or a spec string like ``"9->8->1"``.
    hidden_activation, output_activation:
        Activation names; the NPU uses sigmoid hidden layers and a linear
        output layer, which are the defaults.
    rng:
        Seeded generator for reproducible weight initialization.
    """

    def __init__(
        self,
        topology,
        hidden_activation: str = "sigmoid",
        output_activation: str = "linear",
        rng: Optional[np.random.Generator] = None,
    ):
        if isinstance(topology, str):
            topology = Topology.parse(topology)
        if not isinstance(topology, Topology):
            topology = Topology(tuple(topology))
        self.topology = topology
        self._hidden_act: Activation = get_activation(hidden_activation)
        self._output_act: Activation = get_activation(output_activation)
        rng = rng or np.random.default_rng(0)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for n_in, n_out in zip(topology.sizes[:-1], topology.sizes[1:]):
            # Xavier/Glorot initialization keeps sigmoids out of saturation.
            scale = np.sqrt(6.0 / (n_in + n_out))
            self.weights.append(rng.uniform(-scale, scale, size=(n_in, n_out)))
            self.biases.append(np.zeros(n_out))

    @property
    def n_layers(self) -> int:
        """Number of weight layers (== len(topology.sizes) - 1)."""
        return len(self.weights)

    def activation_for_layer(self, layer: int) -> Activation:
        """The activation applied after weight layer ``layer`` (0-based)."""
        return self._output_act if layer == self.n_layers - 1 else self._hidden_act

    def forward(
        self,
        x: np.ndarray,
        out: Optional[np.ndarray] = None,
        scratch: Optional[List[np.ndarray]] = None,
    ) -> np.ndarray:
        """Evaluate the network on a batch.

        ``x`` has shape ``(n_samples, n_inputs)`` (a 1-D array is treated as
        a single batch of samples for 1-input networks).  Returns an array of
        shape ``(n_samples, n_outputs)``.

        ``out`` (shape ``(n_samples, n_outputs)``) receives the final layer
        in place, and ``scratch`` supplies one preallocated buffer per
        hidden layer (shape ``(n_samples, layer_width)``); with both, a
        forward pass performs zero interior allocations — every matmul and
        activation writes into caller-owned memory via ``np.matmul(...,
        out=)`` and the activations' in-place path.  Results are numerically
        identical to the allocating path.
        """
        arr = np.asarray(x, dtype=float)
        if arr.ndim == 1:
            arr = arr.reshape(-1, self.topology.n_inputs)
        if arr.shape[1] != self.topology.n_inputs:
            raise ConfigurationError(
                f"expected {self.topology.n_inputs} inputs, got shape {arr.shape}"
            )
        n = arr.shape[0]
        last = self.n_layers - 1
        h = arr
        for layer, (w, b) in enumerate(zip(self.weights, self.biases)):
            if layer == last and out is not None:
                dst = out
            elif scratch is not None and layer < len(scratch):
                dst = scratch[layer]
            else:
                dst = np.empty((n, w.shape[1]))
            np.matmul(h, w, out=dst)
            dst += b
            h = self.activation_for_layer(layer)(dst, out=dst)
        return h

    def forward_trace(self, x: np.ndarray):
        """Like :meth:`forward` but also return all layer activations.

        The trace (a list of arrays, starting with the input) is used by the
        backprop trainer.
        """
        arr = np.asarray(x, dtype=float)
        if arr.ndim == 1:
            arr = arr.reshape(-1, self.topology.n_inputs)
        if arr.shape[1] != self.topology.n_inputs:
            raise ConfigurationError(
                f"expected {self.topology.n_inputs} inputs, got shape {arr.shape}"
            )
        activations = [arr]
        for layer, (w, b) in enumerate(zip(self.weights, self.biases)):
            pre = activations[-1] @ w + b
            activations.append(self.activation_for_layer(layer)(pre))
        return activations[-1], activations

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def copy(self) -> "MLP":
        """Deep copy of the network (used by the topology search)."""
        clone = MLP(
            self.topology,
            hidden_activation=self._hidden_act.name,
            output_activation=self._output_act.name,
        )
        clone.weights = [w.copy() for w in self.weights]
        clone.biases = [b.copy() for b in self.biases]
        return clone

    def get_flat_params(self) -> np.ndarray:
        """All weights and biases as one flat vector."""
        parts = []
        for w, b in zip(self.weights, self.biases):
            parts.append(w.ravel())
            parts.append(b.ravel())
        return np.concatenate(parts)

    def set_flat_params(self, flat: Sequence[float]) -> None:
        """Load parameters from a flat vector (inverse of get_flat_params)."""
        flat = np.asarray(flat, dtype=float)
        expected = self.topology.n_weights
        if flat.size != expected:
            raise ConfigurationError(
                f"expected {expected} parameters, got {flat.size}"
            )
        pos = 0
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            self.weights[i] = flat[pos : pos + w.size].reshape(w.shape)
            pos += w.size
            self.biases[i] = flat[pos : pos + b.size].reshape(b.shape)
            pos += b.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MLP({self.topology})"
