"""Activation functions for the MLP used as the NPU functional model.

The NPU paper (Esmaeilzadeh et al., MICRO'12) uses sigmoid activations in the
hidden layers and a linear output layer; we provide those plus tanh and ReLU
so topology experiments can explore alternatives.

Each activation is a small value object exposing ``__call__`` and
``derivative``.  ``derivative`` is expressed in terms of the *activation
output* where that is cheaper (sigmoid, tanh), which is what the backprop
trainer expects.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "Activation",
    "Sigmoid",
    "Tanh",
    "ReLU",
    "Linear",
    "get_activation",
]


class Activation:
    """Base class for activation functions.

    Subclasses implement :meth:`__call__` mapping pre-activations to
    activations and :meth:`derivative` mapping *activation outputs* to the
    local gradient d(out)/d(pre).
    """

    name: str = "base"

    def __call__(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Map pre-activations to activations.

        When ``out`` is given (it may be ``x`` itself) the result is
        written into it and returned, so batch kernels can run whole
        layers without interior allocations.  Numerically identical to the
        allocating path — the same ufunc sequence either way.
        """
        raise NotImplementedError

    def derivative(self, out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class Sigmoid(Activation):
    """Logistic sigmoid, the NPU's hidden-layer activation."""

    name = "sigmoid"

    def __call__(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        # Clip to avoid overflow in exp for very large negative inputs.
        if out is None:
            return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        np.clip(x, -60.0, 60.0, out=out)
        np.negative(out, out=out)
        np.exp(out, out=out)
        out += 1.0
        np.divide(1.0, out, out=out)
        return out

    def derivative(self, out: np.ndarray) -> np.ndarray:
        return out * (1.0 - out)


class Tanh(Activation):
    """Hyperbolic tangent activation."""

    name = "tanh"

    def __call__(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if out is None:
            return np.tanh(x)
        return np.tanh(x, out=out)

    def derivative(self, out: np.ndarray) -> np.ndarray:
        return 1.0 - out * out


class ReLU(Activation):
    """Rectified linear unit."""

    name = "relu"

    def __call__(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if out is None:
            return np.maximum(x, 0.0)
        return np.maximum(x, 0.0, out=out)

    def derivative(self, out: np.ndarray) -> np.ndarray:
        return (out > 0.0).astype(out.dtype)


class Linear(Activation):
    """Identity activation used for output layers (regression)."""

    name = "linear"

    def __call__(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if out is None or out is x:
            return x
        np.copyto(out, x)
        return out

    def derivative(self, out: np.ndarray) -> np.ndarray:
        return np.ones_like(out)


_REGISTRY: Dict[str, Activation] = {
    cls.name: cls() for cls in (Sigmoid, Tanh, ReLU, Linear)
}


def get_activation(name: str) -> Activation:
    """Look up an activation instance by name.

    Parameters
    ----------
    name:
        One of ``"sigmoid"``, ``"tanh"``, ``"relu"``, ``"linear"``.

    Raises
    ------
    ConfigurationError
        If the name is not a known activation.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown activation {name!r}; known activations: {known}"
        ) from None
