"""Feature scaling for NN training.

The NPU maps arbitrary kernel signatures onto a small sigmoid MLP, which
trains poorly on un-normalized data.  :class:`MinMaxScaler` maps each column
into a target interval (default ``[0, 1]``) and can invert the mapping, which
the NPU backend uses to de-normalize accelerator outputs before they are
committed to the output queue.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import NotFittedError

__all__ = ["MinMaxScaler", "StandardScaler"]


def _as_2d(x: np.ndarray) -> np.ndarray:
    """Coerce ``x`` to a 2-D float array with samples on axis 0."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    return arr


class MinMaxScaler:
    """Scale columns linearly into ``feature_range``.

    Degenerate (constant) columns map to the midpoint of the range rather
    than producing division-by-zero artifacts.
    """

    def __init__(self, feature_range: Tuple[float, float] = (0.0, 1.0)):
        lo, hi = feature_range
        if not hi > lo:
            raise ValueError(f"feature_range must be increasing, got {feature_range}")
        self.feature_range = (float(lo), float(hi))
        self._data_min: Optional[np.ndarray] = None
        self._data_span: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self._data_min is not None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        arr = _as_2d(x)
        self._data_min = arr.min(axis=0)
        span = arr.max(axis=0) - self._data_min
        # Constant columns: use span 1 so they map to range-low + 0, then the
        # midpoint shift in transform keeps them centred.
        self._data_span = np.where(span == 0.0, 1.0, span)
        self._constant = span == 0.0
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise NotFittedError("MinMaxScaler.transform called before fit")
        arr = _as_2d(x)
        lo, hi = self.feature_range
        unit = (arr - self._data_min) / self._data_span
        unit = np.where(self._constant, 0.5, unit)
        return lo + unit * (hi - lo)

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, y: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise NotFittedError("MinMaxScaler.inverse_transform called before fit")
        arr = _as_2d(y)
        lo, hi = self.feature_range
        unit = (arr - lo) / (hi - lo)
        unit = np.where(self._constant, 0.0, unit)
        return unit * self._data_span + self._data_min

    def transform_affine(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-column ``(scale, offset)`` with ``transform(x) == x*scale + offset``.

        Constant columns get scale 0 (they map to the range midpoint
        unconditionally, matching :meth:`transform`).  This is what lets the
        NPU backend fold the input normalization into the first MLP layer.
        """
        if not self.is_fitted:
            raise NotFittedError("MinMaxScaler.transform_affine called before fit")
        lo, hi = self.feature_range
        scale = np.where(self._constant, 0.0, (hi - lo) / self._data_span)
        offset = np.where(
            self._constant,
            lo + 0.5 * (hi - lo),
            lo - self._data_min * scale,
        )
        return scale, offset

    def inverse_affine(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-column ``(scale, offset)`` with ``inverse_transform(y) == y*scale + offset``.

        Constant columns get scale 0 and map straight back to their fitted
        value, matching :meth:`inverse_transform`.
        """
        if not self.is_fitted:
            raise NotFittedError("MinMaxScaler.inverse_affine called before fit")
        lo, hi = self.feature_range
        scale = np.where(self._constant, 0.0, self._data_span / (hi - lo))
        offset = np.where(
            self._constant, self._data_min, self._data_min - lo * scale
        )
        return scale, offset


class StandardScaler:
    """Zero-mean / unit-variance scaling (used by the error-predictor trainer)."""

    def __init__(self) -> None:
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self._mean is not None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        arr = _as_2d(x)
        self._mean = arr.mean(axis=0)
        std = arr.std(axis=0)
        self._std = np.where(std == 0.0, 1.0, std)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise NotFittedError("StandardScaler.transform called before fit")
        return (_as_2d(x) - self._mean) / self._std

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, y: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise NotFittedError("StandardScaler.inverse_transform called before fit")
        return _as_2d(y) * self._std + self._mean
