"""From-scratch neural network substrate (pyBrain substitute).

This subpackage provides the MLP used as the functional model of the NPU
accelerator: topology parsing (Table 1 notation), forward evaluation,
RProp/SGD training, feature scaling, and the smallest-adequate-net topology
search policy described in Sec. 4 of the paper.
"""

from repro.nn.activations import (
    Activation,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
    get_activation,
)
from repro.nn.mlp import MLP, Topology
from repro.nn.scaler import MinMaxScaler, StandardScaler
from repro.nn.topology import (
    CandidateResult,
    enumerate_topologies,
    search_topology,
)
from repro.nn.trainer import RPropTrainer, SGDTrainer, TrainingResult, mse

__all__ = [
    "Activation",
    "Sigmoid",
    "Tanh",
    "ReLU",
    "Linear",
    "get_activation",
    "MLP",
    "Topology",
    "MinMaxScaler",
    "StandardScaler",
    "RPropTrainer",
    "SGDTrainer",
    "TrainingResult",
    "mse",
    "CandidateResult",
    "enumerate_topologies",
    "search_topology",
]
