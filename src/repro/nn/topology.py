"""NN topology search — "we find the best NN configuration by searching the
NN topology space" (Sec. 4, Accelerator Output).

The paper constrains the space to at most 2 hidden layers and at most 32
neurons per layer (the NPU restriction) and picks *the smallest NN that does
not produce excessive errors*.  :func:`search_topology` reproduces that
policy: candidates are enumerated smallest-first (by weight count), trained,
and the first candidate whose validation error is within ``slack`` of the
best-seen error is selected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.mlp import MLP, Topology
from repro.nn.trainer import RPropTrainer, mse

__all__ = ["CandidateResult", "enumerate_topologies", "search_topology"]

#: Per-layer widths considered by default (powers of two up to the NPU's 32).
DEFAULT_WIDTHS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class CandidateResult:
    """Training outcome for one candidate topology."""

    topology: Topology
    val_error: float
    n_weights: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.topology} (err={self.val_error:.4g}, w={self.n_weights})"


def enumerate_topologies(
    n_inputs: int,
    n_outputs: int,
    widths: Sequence[int] = DEFAULT_WIDTHS,
    max_hidden_layers: int = 2,
) -> List[Topology]:
    """Enumerate candidate topologies smallest-first.

    Candidates have 1..``max_hidden_layers`` hidden layers with widths drawn
    from ``widths`` (each ≤ 32, the NPU per-layer cap), ordered by total
    weight count so that the search can stop at the smallest adequate net.
    """
    if n_inputs <= 0 or n_outputs <= 0:
        raise ConfigurationError("n_inputs and n_outputs must be positive")
    if max_hidden_layers < 1:
        raise ConfigurationError("max_hidden_layers must be >= 1")
    over_cap = [w for w in widths if w > 32]
    if over_cap:
        raise ConfigurationError(
            f"hidden widths {over_cap} exceed the NPU per-layer cap of 32 neurons"
        )
    candidates: List[Topology] = []
    for w1 in widths:
        candidates.append(Topology((n_inputs, w1, n_outputs)))
    if max_hidden_layers >= 2:
        for w1 in widths:
            for w2 in widths:
                candidates.append(Topology((n_inputs, w1, w2, n_outputs)))
    candidates.sort(key=lambda t: (t.n_weights, len(t.sizes)))
    return candidates


def search_topology(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    widths: Sequence[int] = (2, 4, 8),
    max_hidden_layers: int = 2,
    slack: float = 1.10,
    trainer: Optional[RPropTrainer] = None,
    max_candidates: Optional[int] = None,
    seed: int = 0,
) -> Tuple[MLP, List[CandidateResult]]:
    """Pick the smallest topology whose error is within ``slack`` of the best.

    Every candidate (smallest-first) is trained on ``(x_train, y_train)`` and
    scored on ``(x_val, y_val)``.  The returned network is the smallest one
    whose validation MSE ≤ ``slack`` × (best validation MSE over all
    candidates) — the paper's "smallest NN that does not produce excessive
    errors".

    Returns the selected trained :class:`MLP` and the full candidate table.
    """
    if slack < 1.0:
        raise ConfigurationError("slack must be >= 1.0")
    x_train = np.asarray(x_train, dtype=float)
    y_train = np.asarray(y_train, dtype=float)
    n_inputs = 1 if x_train.ndim == 1 else x_train.shape[1]
    n_outputs = 1 if y_train.ndim == 1 else y_train.shape[1]
    trainer = trainer or RPropTrainer(max_epochs=150, patience=20, seed=seed)
    candidates = enumerate_topologies(n_inputs, n_outputs, widths, max_hidden_layers)
    if max_candidates is not None:
        candidates = candidates[:max_candidates]

    results: List[CandidateResult] = []
    trained: List[MLP] = []
    for i, topo in enumerate(candidates):
        net = MLP(topo, rng=np.random.default_rng(seed + i))
        trainer.train(net, x_train, y_train)
        val_err = mse(
            net.forward(x_val),
            np.asarray(y_val, dtype=float).reshape(-1, n_outputs),
        )
        results.append(CandidateResult(topo, val_err, topo.n_weights))
        trained.append(net)

    best_err = min(r.val_error for r in results)
    for net, res in zip(trained, results):
        if res.val_error <= slack * best_err:
            return net, results
    # Unreachable: the best candidate always satisfies the slack bound.
    raise AssertionError("topology search found no admissible candidate")
