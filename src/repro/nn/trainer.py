"""Offline NN trainers — the "accelerator trainer" of Rumba's Fig. 4.

Two trainers are provided:

* :class:`RPropTrainer` — resilient backpropagation, the default trainer in
  pyBrain (the library the paper used to obtain accelerator outputs).  RProp
  is a full-batch method that adapts a per-parameter step size from gradient
  sign agreement; it is insensitive to learning-rate choice, which makes the
  topology search robust.
* :class:`SGDTrainer` — plain mini-batch stochastic gradient descent with
  momentum, as a cheaper alternative for the large benchmark runs.

Both minimize mean squared error, report a training history, and support an
early-stop patience on a validation split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError, TrainingError
from repro.nn.mlp import MLP

__all__ = ["TrainingResult", "RPropTrainer", "SGDTrainer", "mse"]


def mse(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error between two equally-shaped arrays."""
    pred = np.asarray(pred, dtype=float)
    target = np.asarray(target, dtype=float)
    if pred.shape != target.shape:
        raise ConfigurationError(
            f"shape mismatch in mse: {pred.shape} vs {target.shape}"
        )
    return float(np.mean((pred - target) ** 2))


@dataclass
class TrainingResult:
    """Outcome of a training run.

    Attributes
    ----------
    train_losses:
        MSE on the training set after each epoch.
    val_losses:
        MSE on the validation split (empty when no split was requested).
    best_epoch:
        Epoch index with the lowest validation (or training) loss.
    converged:
        Whether training stopped because the loss plateaued rather than
        because the epoch budget was exhausted.
    """

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    best_epoch: int = 0
    converged: bool = False

    @property
    def final_loss(self) -> float:
        if not self.train_losses:
            raise TrainingError("training produced no epochs")
        return self.train_losses[-1]

    @property
    def best_loss(self) -> float:
        losses = self.val_losses or self.train_losses
        if not losses:
            raise TrainingError("training produced no epochs")
        return losses[self.best_epoch]


def _backprop_gradients(
    net: MLP, x: np.ndarray, y: np.ndarray
) -> Tuple[List[np.ndarray], List[np.ndarray], float]:
    """Return (weight_grads, bias_grads, batch_mse) for one batch."""
    out, trace = net.forward_trace(x)
    target = np.asarray(y, dtype=float)
    if target.ndim == 1:
        target = target.reshape(-1, net.topology.n_outputs)
    n = out.shape[0]
    err = out - target
    loss = float(np.mean(err**2))
    # dL/d(out) for MSE with mean over samples *and* outputs.
    delta = (2.0 / err.size) * err * net.activation_for_layer(net.n_layers - 1).derivative(out)
    w_grads: List[np.ndarray] = [np.empty(0)] * net.n_layers
    b_grads: List[np.ndarray] = [np.empty(0)] * net.n_layers
    for layer in range(net.n_layers - 1, -1, -1):
        inp = trace[layer]
        w_grads[layer] = inp.T @ delta
        b_grads[layer] = delta.sum(axis=0)
        if layer > 0:
            delta = (delta @ net.weights[layer].T) * net.activation_for_layer(
                layer - 1
            ).derivative(trace[layer])
    return w_grads, b_grads, loss


def _split_validation(
    x: np.ndarray, y: np.ndarray, fraction: float, rng: np.random.Generator
):
    """Shuffle and split off a validation fraction."""
    n = x.shape[0]
    idx = rng.permutation(n)
    n_val = int(round(n * fraction))
    val_idx, train_idx = idx[:n_val], idx[n_val:]
    if train_idx.size == 0:
        raise ConfigurationError("validation fraction leaves no training data")
    return x[train_idx], y[train_idx], x[val_idx], y[val_idx]


class RPropTrainer:
    """Resilient backpropagation (iRprop-) trainer.

    Parameters
    ----------
    max_epochs:
        Upper bound on full-batch epochs.
    eta_plus, eta_minus:
        Step-size growth/shrink factors on gradient sign agreement/flip.
    delta_init, delta_min, delta_max:
        Initial and clamped per-parameter step sizes.
    patience:
        Stop after this many epochs with no best-loss improvement.
    val_fraction:
        Fraction of the data held out for early stopping (0 disables).
    tol:
        Absolute loss below which training stops as converged.
    """

    def __init__(
        self,
        max_epochs: int = 300,
        eta_plus: float = 1.2,
        eta_minus: float = 0.5,
        delta_init: float = 0.01,
        delta_min: float = 1e-8,
        delta_max: float = 5.0,
        patience: int = 30,
        val_fraction: float = 0.0,
        tol: float = 1e-10,
        seed: int = 0,
    ):
        if max_epochs <= 0:
            raise ConfigurationError("max_epochs must be positive")
        if not (0.0 <= val_fraction < 1.0):
            raise ConfigurationError("val_fraction must be in [0, 1)")
        self.max_epochs = max_epochs
        self.eta_plus = eta_plus
        self.eta_minus = eta_minus
        self.delta_init = delta_init
        self.delta_min = delta_min
        self.delta_max = delta_max
        self.patience = patience
        self.val_fraction = val_fraction
        self.tol = tol
        self.seed = seed

    def train(self, net: MLP, x: np.ndarray, y: np.ndarray) -> TrainingResult:
        """Train ``net`` in place; returns the loss history."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim == 1:
            x = x.reshape(-1, net.topology.n_inputs)
        if y.ndim == 1:
            y = y.reshape(-1, net.topology.n_outputs)
        rng = np.random.default_rng(self.seed)
        if self.val_fraction > 0.0:
            x_tr, y_tr, x_val, y_val = _split_validation(x, y, self.val_fraction, rng)
        else:
            x_tr, y_tr, x_val, y_val = x, y, None, None

        deltas_w = [np.full_like(w, self.delta_init) for w in net.weights]
        deltas_b = [np.full_like(b, self.delta_init) for b in net.biases]
        prev_gw = [np.zeros_like(w) for w in net.weights]
        prev_gb = [np.zeros_like(b) for b in net.biases]

        result = TrainingResult()
        best = np.inf
        best_params = net.get_flat_params()
        stall = 0
        for epoch in range(self.max_epochs):
            gw, gb, _ = _backprop_gradients(net, x_tr, y_tr)
            for i in range(net.n_layers):
                self._rprop_update(
                    net.weights[i], gw[i], prev_gw[i], deltas_w[i]
                )
                self._rprop_update(net.biases[i], gb[i], prev_gb[i], deltas_b[i])
                prev_gw[i], prev_gb[i] = gw[i], gb[i]
            # Measure *after* the update so the recorded loss corresponds to
            # the parameters that best_params may snapshot below.
            loss = mse(net.forward(x_tr), y_tr)
            result.train_losses.append(loss)
            if x_val is not None:
                val_loss = mse(net.forward(x_val), y_val)
                result.val_losses.append(val_loss)
                monitor = val_loss
            else:
                monitor = loss
            if monitor < best - 1e-15:
                best = monitor
                result.best_epoch = epoch
                best_params = net.get_flat_params()
                stall = 0
            else:
                stall += 1
            if monitor <= self.tol or stall >= self.patience:
                result.converged = True
                break
        net.set_flat_params(best_params)
        if not np.all(np.isfinite(net.get_flat_params())):
            raise TrainingError("RProp training diverged to non-finite weights")
        return result

    def _rprop_update(
        self,
        params: np.ndarray,
        grad: np.ndarray,
        prev_grad: np.ndarray,
        delta: np.ndarray,
    ) -> None:
        """iRprop- in-place parameter update."""
        sign = grad * prev_grad
        grow = sign > 0
        shrink = sign < 0
        delta[grow] = np.minimum(delta[grow] * self.eta_plus, self.delta_max)
        delta[shrink] = np.maximum(delta[shrink] * self.eta_minus, self.delta_min)
        # iRprop-: on a sign flip, zero the gradient so no step is taken.
        grad[shrink] = 0.0
        params -= np.sign(grad) * delta


class SGDTrainer:
    """Mini-batch SGD with classical momentum."""

    def __init__(
        self,
        max_epochs: int = 200,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        batch_size: int = 64,
        patience: int = 25,
        val_fraction: float = 0.0,
        tol: float = 1e-10,
        seed: int = 0,
    ):
        if max_epochs <= 0:
            raise ConfigurationError("max_epochs must be positive")
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        self.max_epochs = max_epochs
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.batch_size = batch_size
        self.patience = patience
        self.val_fraction = val_fraction
        self.tol = tol
        self.seed = seed

    def train(self, net: MLP, x: np.ndarray, y: np.ndarray) -> TrainingResult:
        """Train ``net`` in place; returns the loss history."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim == 1:
            x = x.reshape(-1, net.topology.n_inputs)
        if y.ndim == 1:
            y = y.reshape(-1, net.topology.n_outputs)
        rng = np.random.default_rng(self.seed)
        if self.val_fraction > 0.0:
            x_tr, y_tr, x_val, y_val = _split_validation(x, y, self.val_fraction, rng)
        else:
            x_tr, y_tr, x_val, y_val = x, y, None, None

        vel_w = [np.zeros_like(w) for w in net.weights]
        vel_b = [np.zeros_like(b) for b in net.biases]
        result = TrainingResult()
        best = np.inf
        best_params = net.get_flat_params()
        stall = 0
        n = x_tr.shape[0]
        for epoch in range(self.max_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                gw, gb, _ = _backprop_gradients(net, x_tr[batch], y_tr[batch])
                for i in range(net.n_layers):
                    vel_w[i] = self.momentum * vel_w[i] - self.learning_rate * gw[i]
                    vel_b[i] = self.momentum * vel_b[i] - self.learning_rate * gb[i]
                    net.weights[i] += vel_w[i]
                    net.biases[i] += vel_b[i]
            loss = mse(net.forward(x_tr), y_tr)
            result.train_losses.append(loss)
            if x_val is not None:
                val_loss = mse(net.forward(x_val), y_val)
                result.val_losses.append(val_loss)
                monitor = val_loss
            else:
                monitor = loss
            if monitor < best - 1e-15:
                best = monitor
                result.best_epoch = epoch
                best_params = net.get_flat_params()
                stall = 0
            else:
                stall += 1
            if monitor <= self.tol or stall >= self.patience:
                result.converged = True
                break
        net.set_flat_params(best_params)
        if not np.all(np.isfinite(net.get_flat_params())):
            raise TrainingError("SGD training diverged to non-finite weights")
        return result
