"""Persistence for trained artifacts.

Offline training (the two trainer boxes of Fig. 4) happens once per
application; deployments then ship the trained accelerator network and
checker coefficients in the binary.  This module provides that shipping
format: a single ``.npz`` archive holding the MLP weights, the scaler
statistics, the checker coefficients and a JSON metadata record.

Supported artifacts: :class:`~repro.approx.npu_backend.NPUBackend` and the
fitted predictors (linear, tree, EMA; the stateless baseline schemes are
reconstructed from their names).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.approx.npu_backend import NPUBackend
from repro.errors import ConfigurationError, NotFittedError
from repro.nn.mlp import MLP, Topology
from repro.nn.scaler import MinMaxScaler
from repro.predictors.base import ErrorPredictor
from repro.predictors.ema import EMAPredictor
from repro.predictors.linear import LinearErrorPredictor
from repro.predictors.oracle import OraclePredictor
from repro.predictors.sampling import RandomPredictor, UniformPredictor
from repro.predictors.tree import DecisionTreeErrorPredictor, TreeNode

__all__ = [
    "save_backend",
    "load_backend",
    "save_predictor",
    "load_predictor",
]

_FORMAT_VERSION = 1


# --------------------------------------------------------------------- #
# Scaler (de)serialization                                              #
# --------------------------------------------------------------------- #
def _scaler_arrays(scaler: MinMaxScaler, prefix: str) -> Dict[str, np.ndarray]:
    if not scaler.is_fitted:
        raise NotFittedError("cannot save an unfitted scaler")
    return {
        f"{prefix}_min": scaler._data_min,
        f"{prefix}_span": scaler._data_span,
        f"{prefix}_constant": scaler._constant,
        f"{prefix}_range": np.asarray(scaler.feature_range),
    }


def _scaler_from_arrays(data, prefix: str) -> MinMaxScaler:
    lo, hi = data[f"{prefix}_range"]
    scaler = MinMaxScaler((float(lo), float(hi)))
    scaler._data_min = data[f"{prefix}_min"]
    scaler._data_span = data[f"{prefix}_span"]
    scaler._constant = data[f"{prefix}_constant"].astype(bool)
    return scaler


# --------------------------------------------------------------------- #
# Backend                                                               #
# --------------------------------------------------------------------- #
def save_backend(backend: NPUBackend, path: Union[str, Path]) -> Path:
    """Write a trained accelerator backend to ``path`` (.npz)."""
    path = Path(path)
    meta = {
        "format_version": _FORMAT_VERSION,
        "artifact": "npu_backend",
        "topology": str(backend.topology),
        "hidden_activation": backend.network._hidden_act.name,
        "output_activation": backend.network._output_act.name,
        "input_columns": list(backend.input_columns)
        if backend.input_columns is not None
        else None,
    }
    arrays: Dict[str, np.ndarray] = {
        "meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        "params": backend.network.get_flat_params(),
    }
    arrays.update(_scaler_arrays(backend.input_scaler, "in"))
    arrays.update(_scaler_arrays(backend.output_scaler, "out"))
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def load_backend(path: Union[str, Path]) -> NPUBackend:
    """Read a backend previously written by :func:`save_backend`."""
    with np.load(Path(path)) as data:
        meta = _read_meta(data, expected="npu_backend")
        network = MLP(
            Topology.parse(meta["topology"]),
            hidden_activation=meta["hidden_activation"],
            output_activation=meta["output_activation"],
        )
        network.set_flat_params(data["params"])
        columns = meta["input_columns"]
        return NPUBackend(
            network=network,
            input_scaler=_scaler_from_arrays(data, "in"),
            output_scaler=_scaler_from_arrays(data, "out"),
            input_columns=tuple(columns) if columns is not None else None,
        )


# --------------------------------------------------------------------- #
# Predictors                                                            #
# --------------------------------------------------------------------- #
def _tree_to_arrays(root: TreeNode):
    """Flatten a tree into parallel arrays (preorder)."""
    features: List[int] = []
    thresholds: List[float] = []
    lefts: List[int] = []
    rights: List[int] = []
    values: List[float] = []

    def visit(node: TreeNode) -> int:
        index = len(features)
        features.append(node.feature)
        thresholds.append(node.threshold)
        values.append(node.value)
        lefts.append(-1)
        rights.append(-1)
        if not node.is_leaf:
            lefts[index] = visit(node.left)
            rights[index] = visit(node.right)
        return index

    visit(root)
    return (
        np.asarray(features, dtype=np.int64),
        np.asarray(thresholds, dtype=float),
        np.asarray(lefts, dtype=np.int64),
        np.asarray(rights, dtype=np.int64),
        np.asarray(values, dtype=float),
    )


def _tree_from_arrays(features, thresholds, lefts, rights, values) -> TreeNode:
    def build(index: int) -> TreeNode:
        node = TreeNode(
            feature=int(features[index]),
            threshold=float(thresholds[index]),
            value=float(values[index]),
        )
        if lefts[index] >= 0:
            node.left = build(int(lefts[index]))
            node.right = build(int(rights[index]))
        return node

    return build(0)


def save_predictor(predictor: ErrorPredictor, path: Union[str, Path]) -> Path:
    """Write a fitted predictor to ``path`` (.npz)."""
    path = Path(path)
    meta = {
        "format_version": _FORMAT_VERSION,
        "artifact": "predictor",
        "name": predictor.name,
    }
    arrays: Dict[str, np.ndarray] = {}
    if isinstance(predictor, LinearErrorPredictor):
        predictor._require_fitted()
        arrays["weights"] = predictor.weights
        arrays["bias"] = np.asarray([predictor.bias])
    elif isinstance(predictor, DecisionTreeErrorPredictor):
        predictor._require_fitted()
        f, t, l, r, v = _tree_to_arrays(predictor.root)
        arrays.update(
            tree_features=f, tree_thresholds=t, tree_lefts=l,
            tree_rights=r, tree_values=v,
        )
        meta["max_depth"] = predictor.max_depth
        meta["min_samples_leaf"] = predictor.min_samples_leaf
        meta["n_thresholds"] = predictor.n_thresholds
        meta["n_features"] = predictor._n_features
    elif isinstance(predictor, EMAPredictor):
        meta["history"] = predictor.history
    elif isinstance(predictor, (OraclePredictor, UniformPredictor)):
        pass  # stateless
    elif isinstance(predictor, RandomPredictor):
        meta["seed"] = predictor.seed
    else:
        raise ConfigurationError(
            f"cannot serialize predictor type {type(predictor).__name__}"
        )
    arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez(path, **arrays)
    return path


def load_predictor(path: Union[str, Path]) -> ErrorPredictor:
    """Read a predictor previously written by :func:`save_predictor`."""
    with np.load(Path(path)) as data:
        meta = _read_meta(data, expected="predictor")
        name = meta["name"]
        if name == "linearErrors":
            predictor = LinearErrorPredictor()
            predictor.weights = data["weights"]
            predictor.bias = float(data["bias"][0])
            predictor._fitted = True
            return predictor
        if name == "treeErrors":
            predictor = DecisionTreeErrorPredictor(
                max_depth=meta["max_depth"],
                min_samples_leaf=meta["min_samples_leaf"],
                n_thresholds=meta["n_thresholds"],
            )
            predictor.root = _tree_from_arrays(
                data["tree_features"], data["tree_thresholds"],
                data["tree_lefts"], data["tree_rights"], data["tree_values"],
            )
            predictor._n_features = meta["n_features"]
            predictor._fitted = True
            return predictor
        if name == "EMA":
            return EMAPredictor(history=meta["history"])
        if name == "Ideal":
            return OraclePredictor()
        if name == "Uniform":
            return UniformPredictor()
        if name == "Random":
            return RandomPredictor(seed=meta["seed"])
        raise ConfigurationError(f"unknown predictor artifact {name!r}")


def _read_meta(data, expected: str) -> dict:
    if "meta" not in data:
        raise ConfigurationError("archive has no metadata record")
    meta = json.loads(bytes(data["meta"]).decode())
    if meta.get("artifact") != expected:
        raise ConfigurationError(
            f"archive holds a {meta.get('artifact')!r}, expected {expected!r}"
        )
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported format version {meta.get('format_version')!r}"
        )
    return meta
