"""Flight-recorder tests: round trips, rotation, and crash-torn tails."""

from __future__ import annotations

import os
import struct

import pytest

from repro.errors import ConfigurationError
from repro.observability.flightlog import (
    FlightRecorder,
    aggregate_stages,
    format_record_line,
    format_waterfall,
    iter_flight_records,
    percentile,
    read_flight_log,
    stage_segments,
)


def _record(request_id=1, trace_id=0xAB, latency=0.010, stages=None,
            **extra):
    document = {
        "v": 1,
        "request_id": request_id,
        "trace_id": trace_id,
        "app": "fft",
        "scheme": "treeErrors",
        "worker": "w0",
        "elements": 8,
        "attempts": 0,
        "latency_s": latency,
        "queue_wait_s": 0.001,
        "fix_fraction": 0.25,
        "degraded": False,
        "error": None,
        "stages": stages if stages is not None else [
            ["admit", 0.0], ["dequeue", 0.002], ["compute", 0.007],
            ["complete", latency],
        ],
    }
    document.update(extra)
    return document


class TestRecorder:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "flight.bin")
        documents = [_record(request_id=i, trace_id=100 + i)
                     for i in range(5)]
        with FlightRecorder(path) as recorder:
            for document in documents:
                recorder.record(document)
            assert recorder.written == 5
        assert read_flight_log(path) == documents

    def test_append_across_reopens(self, tmp_path):
        path = str(tmp_path / "flight.bin")
        with FlightRecorder(path) as recorder:
            recorder.record(_record(request_id=1))
        with FlightRecorder(path) as recorder:
            recorder.record(_record(request_id=2))
        ids = [r["request_id"] for r in read_flight_log(path)]
        assert ids == [1, 2]

    def test_rotation_caps_disk_use(self, tmp_path):
        path = str(tmp_path / "flight.bin")
        with FlightRecorder(path, max_bytes=4096) as recorder:
            for i in range(100):
                recorder.record(_record(request_id=i))
            assert recorder.rotations >= 1
        assert os.path.exists(path + ".1")
        assert os.path.getsize(path) <= 4096 + 1024
        records = read_flight_log(path)
        ids = [r["request_id"] for r in records]
        # Rotated generation first, so surviving ids are ordered and end
        # at the last write; the oldest generation was clobbered.
        assert ids == sorted(ids)
        assert ids[-1] == 99
        assert read_flight_log(path, include_rotated=False) == list(
            iter_flight_records(path, include_rotated=False)
        )

    def test_torn_tail_is_dropped_not_garbage(self, tmp_path):
        path = str(tmp_path / "flight.bin")
        with FlightRecorder(path) as recorder:
            for i in range(3):
                recorder.record(_record(request_id=i))
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 7)  # crash mid-write of the last record
        ids = [r["request_id"] for r in read_flight_log(path)]
        assert ids == [0, 1]

    def test_corrupt_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "flight.bin")
        with FlightRecorder(path) as recorder:
            for i in range(3):
                recorder.record(_record(request_id=i))
        with open(path, "r+b") as fh:
            fh.seek(-3, os.SEEK_END)
            fh.write(b"\xff")  # flip a CRC byte of the final record
        ids = [r["request_id"] for r in read_flight_log(path)]
        assert ids == [0, 1]

    def test_garbage_length_prefix_stops_reading(self, tmp_path):
        path = str(tmp_path / "flight.bin")
        with FlightRecorder(path) as recorder:
            recorder.record(_record(request_id=5))
        with open(path, "ab") as fh:
            fh.write(struct.pack("<I", 1 << 30))
        assert [r["request_id"] for r in read_flight_log(path)] == [5]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_flight_log(str(tmp_path / "nope.bin")) == []

    def test_record_after_close_is_dropped(self, tmp_path):
        path = str(tmp_path / "flight.bin")
        recorder = FlightRecorder(path)
        recorder.close()
        recorder.record(_record())
        assert recorder.written == 0
        assert read_flight_log(path) == []

    def test_tiny_cap_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FlightRecorder(str(tmp_path / "flight.bin"), max_bytes=100)


class TestAnalysis:
    def test_stage_segments_are_deltas(self):
        segments = stage_segments(_record(stages=[
            ["admit", 0.0], ["dequeue", 0.004], ["complete", 0.010],
        ]))
        assert segments == [
            ("admit", 0.0),
            ("dequeue", pytest.approx(0.004)),
            ("complete", pytest.approx(0.006)),
        ]

    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile([7.0], 95) == 7.0
        assert percentile([], 50) != percentile([], 50)  # NaN

    def test_aggregate_stages_orders_by_pipeline(self):
        records = [_record(latency=0.010 * (i + 1)) for i in range(10)]
        aggregate = aggregate_stages(records)
        assert list(aggregate) == ["admit", "dequeue", "compute", "complete"]
        for stats in aggregate.values():
            assert stats["count"] == 10
            assert stats["p50"] <= stats["p95"] <= stats["p99"]

    def test_format_record_line_mentions_identity(self):
        line = format_record_line(_record(request_id=42, trace_id=0xBEEF))
        assert "42" in line and f"{0xBEEF:#018x}" in line and "ok" in line
        errored = format_record_line(_record(error=3))
        assert "err=3" in errored

    def test_format_waterfall_covers_latency(self):
        text = format_waterfall(_record())
        assert "admit" in text and "complete" in text
        assert "covers 100.0% of end-to-end latency" in text
        assert "trace" in text

    def test_format_waterfall_empty_stages(self):
        text = format_waterfall(_record(stages=[]))
        assert "no stage events" in text
