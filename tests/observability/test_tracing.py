"""Tracer span ordering, attributes and the JSONL exporter."""

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.observability.tracing import JsonlSpanExporter, Span, Tracer


class TestSpan:
    def test_duration_never_negative(self):
        span = Span(name="x", invocation=0, start=5.0, end=4.0)
        assert span.duration == 0.0

    def test_to_dict_round_trips_through_json(self):
        span = Span(name="x", invocation=3, start=1.0, end=2.5,
                    wall_time=100.0, attributes={"n": 7})
        loaded = json.loads(json.dumps(span.to_dict()))
        assert loaded["name"] == "x"
        assert loaded["invocation"] == 3
        assert loaded["duration_s"] == pytest.approx(1.5)
        assert loaded["attributes"] == {"n": 7}


class TestTracer:
    def test_spans_commit_in_completion_order(self):
        tracer = Tracer()
        tracer.begin_invocation()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.end_invocation()
        names = [s.name for s in tracer.spans]
        assert names == ["inner", "outer"]  # inner finishes first
        inner, outer = tracer.spans
        assert inner.start >= outer.start
        assert outer.end >= inner.end

    def test_phase_order_preserved_within_invocation(self):
        tracer = Tracer()
        tracer.begin_invocation()
        for phase in ("accelerate", "detect", "recover", "tune"):
            with tracer.span(phase):
                pass
        tracer.end_invocation()
        spans = tracer.spans_for(0)
        assert [s.name for s in spans] == [
            "accelerate", "detect", "recover", "tune"
        ]
        starts = [s.start for s in spans]
        assert starts == sorted(starts)

    def test_invocation_ids_are_monotonic(self):
        tracer = Tracer()
        assert tracer.begin_invocation() == 0
        assert tracer.begin_invocation() == 1
        with tracer.span("x"):
            pass
        tracer.end_invocation()
        assert tracer.spans[0].invocation == 1

    def test_pending_spans_invisible_until_invocation_ends(self):
        tracer = Tracer()
        tracer.begin_invocation()
        with tracer.span("x"):
            pass
        assert len(tracer.spans) == 0
        committed = tracer.end_invocation()
        assert len(committed) == 1
        assert len(tracer.spans) == 1

    def test_buffer_is_bounded(self):
        tracer = Tracer(max_spans=3)
        tracer.begin_invocation()
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        tracer.end_invocation()
        assert [s.name for s in tracer.spans] == ["s2", "s3", "s4"]

    def test_span_counts(self):
        tracer = Tracer()
        tracer.begin_invocation()
        for _ in range(3):
            with tracer.span("detect"):
                pass
        with tracer.span("tune"):
            pass
        tracer.end_invocation()
        assert tracer.span_counts() == {"detect": 3, "tune": 1}

    def test_bad_max_spans_rejected(self):
        with pytest.raises(ConfigurationError):
            Tracer(max_spans=0)

    def test_attributes_set_inside_block_survive(self):
        tracer = Tracer()
        tracer.begin_invocation()
        with tracer.span("detect", n_elements=10) as span:
            span.attributes["n_fired"] = 4
        tracer.end_invocation()
        assert tracer.spans[0].attributes == {"n_elements": 10, "n_fired": 4}


class TestJsonlExporter:
    def test_exports_one_json_object_per_line(self):
        sink = io.StringIO()
        exporter = JsonlSpanExporter(sink)
        tracer = Tracer(exporter=exporter)
        tracer.begin_invocation()
        with tracer.span("detect"):
            pass
        with tracer.span("recover"):
            pass
        tracer.end_invocation()
        lines = sink.getvalue().strip().split("\n")
        assert len(lines) == 2
        assert [json.loads(line)["name"] for line in lines] == [
            "detect", "recover"
        ]
        assert exporter.exported == 2

    def test_file_destination(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        with JsonlSpanExporter(path) as exporter:
            tracer = Tracer(exporter=exporter)
            tracer.begin_invocation()
            with tracer.span("x", answer=42):
                pass
            tracer.end_invocation()
        with open(path) as handle:
            record = json.loads(handle.readline())
        assert record["attributes"] == {"answer": 42}
