"""Exporter tests: Prometheus golden file, JSON snapshot, file dumps."""

import json
import os
import re

import pytest

from repro.observability.export import (
    json_snapshot,
    prometheus_text,
    write_snapshot,
)
from repro.observability.metrics import MetricsRegistry

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_exposition.prom")


def _golden_registry() -> MetricsRegistry:
    """Deterministic content mirrored by ``golden_exposition.prom``."""
    registry = MetricsRegistry()
    fire = registry.gauge(
        "rumba_fire_rate", "Fire fraction of the last invocation",
        ("app", "scheme"),
    )
    fire.labels(app="sobel", scheme="treeErrors").set(0.125)
    latency = registry.histogram(
        "rumba_invocation_latency_seconds", "Wall time of one invocation",
        ("app", "scheme"), buckets=(0.1, 1.0),
    )
    child = latency.labels(app="sobel", scheme="treeErrors")
    for value in (0.1, 1.0, 2.0):
        child.observe(value)
    invocations = registry.counter(
        "rumba_invocations_total", "Accelerator invocations processed",
        ("app", "scheme"),
    )
    invocations.labels(app="sobel", scheme="treeErrors").inc(3)
    invocations.labels(app="fft", scheme="treeErrors").inc(2)
    threshold = registry.gauge(
        "rumba_threshold", 'Current detection "threshold" \n with escapes \\'
    )
    threshold.set(0.025 * 3)
    return registry


class TestPrometheusText:
    def test_matches_golden_file(self):
        with open(GOLDEN_PATH) as handle:
            golden = handle.read()
        assert prometheus_text(_golden_registry()) == golden

    def test_empty_registry_is_empty_text(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "help", ("path",))
        gauge.labels(path='a"b\\c\nd').set(1)
        text = prometheus_text(registry)
        assert r'g{path="a\"b\\c\nd"} 1' in text

    def test_every_line_well_formed(self):
        """Every non-comment line is `name{labels} value` — the shape any
        Prometheus scraper parses."""
        pattern = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$"
        )
        for line in prometheus_text(_golden_registry()).strip().split("\n"):
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:]", line)
            else:
                assert pattern.match(line), line


class TestJsonSnapshot:
    def test_snapshot_is_strict_json(self):
        snapshot = json_snapshot(_golden_registry())
        text = json.dumps(snapshot, allow_nan=False)  # raises on Infinity
        loaded = json.loads(text)
        metrics = loaded["metrics"]
        assert metrics["rumba_fire_rate"]["type"] == "gauge"
        assert metrics["rumba_fire_rate"]["series"][0]["value"] == 0.125

    def test_histogram_buckets_cumulative_with_inf_string(self):
        snapshot = json_snapshot(_golden_registry())
        series = snapshot["metrics"]["rumba_invocation_latency_seconds"][
            "series"
        ][0]
        assert series["buckets"] == [[0.1, 1], [1.0, 2], ["+Inf", 3]]
        assert series["count"] == 3

    def test_counter_series_carry_labels(self):
        snapshot = json_snapshot(_golden_registry())
        series = snapshot["metrics"]["rumba_invocations_total"]["series"]
        by_app = {entry["labels"]["app"]: entry["value"] for entry in series}
        assert by_app == {"sobel": 3.0, "fft": 2.0}


class TestWriteSnapshot:
    def test_json_extension_writes_json(self, tmp_path):
        path = str(tmp_path / "snap.json")
        assert write_snapshot(path, _golden_registry()) == "json"
        with open(path) as handle:
            loaded = json.load(handle)
        assert "rumba_threshold" in loaded["metrics"]

    def test_prom_extension_writes_exposition(self, tmp_path):
        path = str(tmp_path / "snap.prom")
        assert write_snapshot(path, _golden_registry()) == "prometheus"
        with open(path) as handle:
            text = handle.read()
        assert "# TYPE rumba_invocations_total counter" in text

    def test_missing_parent_directories_created(self, tmp_path):
        path = str(tmp_path / "deeper" / "still" / "snap.prom")
        assert write_snapshot(path, _golden_registry()) == "prometheus"
        with open(path) as handle:
            assert "rumba_threshold" in handle.read()

    def test_empty_path_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            write_snapshot("", _golden_registry())
