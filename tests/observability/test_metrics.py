"""Registry semantics: labels, cardinality, histogram buckets, threads."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_default_registry,
    set_default_registry,
)


class TestCounter:
    def test_unlabelled_increment(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("c_total", "help")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        counter = Counter("c_total", "help", ("app",))
        counter.labels(app="fft").inc(3)
        counter.labels(app="sobel").inc(4)
        assert counter.labels(app="fft").value == 3
        assert counter.labels(app="sobel").value == 4

    def test_labelled_requires_labels_call(self):
        counter = Counter("c_total", "help", ("app",))
        with pytest.raises(ConfigurationError):
            counter.inc()

    def test_wrong_label_names_rejected(self):
        counter = Counter("c_total", "help", ("app",))
        with pytest.raises(ConfigurationError):
            counter.labels(scheme="x")
        with pytest.raises(ConfigurationError):
            counter.labels(app="x", scheme="y")


class TestLabelCardinality:
    def test_series_capped(self):
        counter = Counter("c_total", "help", ("id",), max_series=5)
        for i in range(5):
            counter.labels(id=str(i)).inc()
        with pytest.raises(ConfigurationError):
            counter.labels(id="overflow")

    def test_existing_series_still_usable_at_cap(self):
        counter = Counter("c_total", "help", ("id",), max_series=2)
        counter.labels(id="a").inc()
        counter.labels(id="b").inc()
        counter.labels(id="a").inc()  # no new series: fine
        assert counter.labels(id="a").value == 2

    def test_invalid_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("0bad", "help")
        with pytest.raises(ConfigurationError):
            Counter("c_total", "help", ("le",))  # reserved
        with pytest.raises(ConfigurationError):
            Counter("c_total", "help", ("a", "a"))  # duplicate


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "help")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(0.5)
        assert gauge.value == 11.5


class TestHistogram:
    def test_bucket_counts_are_cumulative(self):
        hist = Histogram("h", "help", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 1.7, 4.0, 100.0):
            hist.observe(value)
        buckets = hist._self_child().bucket_counts()
        assert buckets == [(1.0, 1), (2.0, 3), (5.0, 4), (float("inf"), 5)]
        assert hist.count == 5
        assert hist.sum == pytest.approx(107.7)

    def test_boundary_lands_in_bucket(self):
        hist = Histogram("h", "help", buckets=(1.0,))
        hist.observe(1.0)  # le="1.0" is inclusive
        assert hist._self_child().bucket_counts()[0] == (1.0, 1)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", "help", buckets=())
        with pytest.raises(ConfigurationError):
            Histogram("h", "help", buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", "help", buckets=(1.0, float("inf")))


class TestRegistry:
    def test_create_or_get_returns_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", "help", ("app",))
        b = registry.counter("c_total", "help", ("app",))
        assert a is b

    def test_type_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", "help")
        with pytest.raises(ConfigurationError):
            registry.gauge("m", "help")

    def test_label_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m_total", "help", ("app",))
        with pytest.raises(ConfigurationError):
            registry.counter("m_total", "help", ("scheme",))

    def test_collect_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.gauge("zz", "help")
        registry.gauge("aa", "help")
        assert [f["name"] for f in registry.collect()] == ["aa", "zz"]

    def test_default_registry_swap(self):
        fresh = MetricsRegistry()
        old = set_default_registry(fresh)
        try:
            assert get_default_registry() is fresh
        finally:
            set_default_registry(old)
        assert get_default_registry() is old

    def test_thread_safety_of_counter(self):
        counter = Counter("c_total", "help", ("t",))

        def work():
            child = counter.labels(t="x")
            for _ in range(1000):
                child.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Concurrent labels() calls converge on one child and no
        # increment is lost.
        assert len(counter._children) == 1
        assert counter.labels(t="x").value == 8000


class TestConcurrentReads:
    def test_histogram_snapshot_consistent_under_writers(self):
        """count/sum/buckets read while 4 threads observe must form a
        consistent triple (sum of bucket counts == count)."""
        hist = Histogram("h_seconds", "help", buckets=(0.1, 1.0, 10.0))
        child = hist.labels()
        stop = threading.Event()

        def write():
            while not stop.is_set():
                child.observe(0.5)

        writers = [threading.Thread(target=write) for _ in range(4)]
        for t in writers:
            t.start()
        try:
            for _ in range(200):
                snap = child._snapshot()
                # Cumulative +Inf bucket must equal the total count, and
                # every observation was 0.5, so sum pins to count too.
                assert snap["buckets"][-1][1] == snap["count"]
                assert snap["sum"] == pytest.approx(0.5 * snap["count"])
        finally:
            stop.set()
            for t in writers:
                t.join()


class TestTelemetryExtraLabels:
    def test_worker_label_produces_separate_series(self):
        from repro.observability import Telemetry

        registry = MetricsRegistry()
        for worker in ("w0", "w1"):
            tel = Telemetry(app="fft", scheme="treeErrors", registry=registry,
                            extra_labels={"worker": worker})
            tel.on_detection(n_checks=100, n_fired=10)
        family = registry.get("rumba_checks_total")
        series = {labels["worker"]: child.value
                  for labels, child in family.series()}
        assert series == {"w0": 100, "w1": 100}

    def test_reserved_label_names_rejected(self):
        from repro.observability import Telemetry

        for name in ("app", "scheme", "phase"):
            with pytest.raises(ConfigurationError):
                Telemetry(app="fft", scheme="treeErrors",
                          registry=MetricsRegistry(),
                          extra_labels={name: "x"})

    def test_unlabelled_telemetry_unchanged(self):
        """No extra labels → exactly the PR 1 label set (the golden
        exposition test depends on this)."""
        from repro.observability import Telemetry

        registry = MetricsRegistry()
        tel = Telemetry(app="fft", scheme="treeErrors", registry=registry)
        tel.on_detection(n_checks=10, n_fired=1)
        family = registry.get("rumba_checks_total")
        (labels, _), = family.series()
        assert set(labels) == {"app", "scheme"}
