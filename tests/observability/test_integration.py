"""End-to-end telemetry: one instrumented invocation emits the documented
metric set; the stream layer emits drift metrics; the dashboard renders."""

import numpy as np
import pytest

from repro.apps import get_application
from repro.core import prepare_system
from repro.core.stream import DriftDetector, QualityManagedStream
from repro.observability import (
    MetricsRegistry,
    Telemetry,
    Tracer,
    prometheus_text,
    render_dashboard,
)
from repro.observability.instrument import (
    PHASES,
    ambient_telemetry_registry,
    disable_ambient_telemetry,
    enable_ambient_telemetry,
)

#: The catalog of docs/observability.md — one run_invocation must touch
#: every one of these families (error gauges only when measuring).
DOCUMENTED_METRICS = [
    "rumba_invocations_total",
    "rumba_elements_total",
    "rumba_checks_total",
    "rumba_fires_total",
    "rumba_fire_rate",
    "rumba_recovered_total",
    "rumba_recovered_fraction",
    "rumba_threshold",
    "rumba_tuner_moves_total",
    "rumba_cpu_kept_up",
    "rumba_cpu_keepup_total",
    "rumba_cpu_utilization",
    "rumba_recovery_queue_occupancy_peak",
    "rumba_recovery_queue_capacity",
    "rumba_recovery_queue_stalls_total",
    "rumba_measured_error",
    "rumba_unchecked_error",
    "rumba_drift_flags_total",
    "rumba_drifted",
    "rumba_invocation_latency_seconds",
    "rumba_invocation_cycles",
    "rumba_phase_spans_total",
    "rumba_phase_seconds_total",
]


@pytest.fixture()
def instrumented_system():
    system = prepare_system("fft", scheme="treeErrors", seed=0)
    registry = MetricsRegistry()
    tracer = Tracer()
    telemetry = Telemetry(app="fft", scheme="treeErrors",
                          registry=registry, tracer=tracer)
    system.attach_telemetry(telemetry)
    return system, telemetry


@pytest.fixture(scope="module")
def fft_inputs():
    rng = np.random.default_rng(7)
    return get_application("fft").test_inputs(rng)


class TestInvocationEmitsMetricSet:
    def test_documented_metric_families_registered(self, instrumented_system,
                                                   fft_inputs):
        system, telemetry = instrumented_system
        system.run_invocation(fft_inputs[:1000])
        for name in DOCUMENTED_METRICS:
            assert name in telemetry.registry, name

    def test_values_match_the_record(self, instrumented_system, fft_inputs):
        system, telemetry = instrumented_system
        record = system.run_invocation(fft_inputs[:1000])
        labels = dict(app="fft", scheme="treeErrors")
        registry = telemetry.registry

        def value(name, **extra):
            return registry.get(name).labels(**labels, **extra).value

        assert value("rumba_invocations_total") == 1
        assert value("rumba_elements_total") == 1000
        assert value("rumba_checks_total") == 1000
        assert value("rumba_fires_total") == record.detection.n_fired
        assert value("rumba_fire_rate") == pytest.approx(
            record.detection.fire_fraction
        )
        assert value("rumba_recovered_total") == record.recovery.n_recovered
        assert value("rumba_recovered_fraction") == pytest.approx(
            record.fix_fraction
        )
        assert value("rumba_measured_error") == pytest.approx(
            record.measured_error
        )
        assert value("rumba_cpu_utilization") == pytest.approx(
            record.pipeline.cpu_utilization
        )
        assert value("rumba_recovery_queue_capacity") >= 1000
        assert value("rumba_recovery_queue_occupancy_peak") == 1000
        latency = registry.get("rumba_invocation_latency_seconds")
        assert latency.labels(**labels).count == 1
        for phase in PHASES:
            assert value("rumba_phase_spans_total", phase=phase) == 1
            assert value("rumba_phase_seconds_total", phase=phase) > 0

    def test_threshold_gauge_tracks_tuner(self, instrumented_system,
                                          fft_inputs):
        system, telemetry = instrumented_system
        system.run_invocation(fft_inputs[:500])
        gauge = telemetry.registry.get("rumba_threshold")
        assert gauge.labels(app="fft", scheme="treeErrors").value == \
            pytest.approx(system.tuner.threshold)

    def test_tracer_spans_per_invocation(self, instrumented_system,
                                         fft_inputs):
        system, telemetry = instrumented_system
        system.run_invocation(fft_inputs[:500])
        system.run_invocation(fft_inputs[500:1000])
        for invocation in (0, 1):
            names = [
                s.name for s in telemetry.tracer.spans_for(invocation)
            ]
            assert names == list(PHASES) + ["invocation"]
        top = telemetry.tracer.spans_for(1)[-1]
        assert top.attributes["n_elements"] == 500
        assert top.attributes["makespan_cycles"] > 0

    def test_aborted_invocation_is_flagged(self, instrumented_system,
                                           fft_inputs):
        system, telemetry = instrumented_system

        def boom(*args, **kwargs):
            raise RuntimeError("accelerator died")

        system.detection.detect_into = boom
        with pytest.raises(RuntimeError):
            system.run_invocation(fft_inputs[:100])
        top = telemetry.tracer.spans_for(0)[-1]
        assert top.name == "invocation"
        assert top.attributes.get("aborted") is True
        # Only completed invocations count.
        counter = telemetry.registry.get("rumba_invocations_total")
        assert counter.labels(app="fft", scheme="treeErrors").value == 0

    def test_uninstrumented_system_records_nothing(self, fft_inputs):
        system = prepare_system("fft", scheme="treeErrors", seed=0)
        registry = MetricsRegistry()
        system.run_invocation(fft_inputs[:200])
        assert system.telemetry is None
        assert registry.names() == []

    def test_prometheus_exposition_from_live_system(self, instrumented_system,
                                                    fft_inputs):
        system, telemetry = instrumented_system
        system.run_invocation(fft_inputs[:300])
        text = prometheus_text(telemetry.registry)
        assert 'rumba_fire_rate{app="fft",scheme="treeErrors"}' in text
        assert "rumba_invocation_latency_seconds_bucket" in text
        assert 'le="+Inf"' in text


class TestStreamDriftTelemetry:
    def test_drift_metrics_emitted(self, fft_inputs):
        system = prepare_system("fft", scheme="treeErrors", seed=0)
        registry = MetricsRegistry()
        system.attach_telemetry(Telemetry(app="fft", scheme="treeErrors",
                                          registry=registry))
        stream = QualityManagedStream(
            system,
            drift_detector=DriftDetector(calibration_invocations=2),
        )
        for i in range(4):
            stream.feed(fft_inputs[i * 200:(i + 1) * 200])
        drifted = registry.get("rumba_drifted")
        assert drifted is not None
        flags = registry.get("rumba_drift_flags_total")
        child = flags.labels(app="fft", scheme="treeErrors")
        assert child.value == len(stream.drift_flagged_at)


class TestAmbientTelemetry:
    def test_systems_auto_attach_while_armed(self, fft_inputs):
        registry = MetricsRegistry()
        enable_ambient_telemetry(registry)
        try:
            assert ambient_telemetry_registry() is registry
            system = prepare_system("fft", scheme="treeErrors", seed=0)
            assert system.telemetry is not None
            system.run_invocation(fft_inputs[:200])
        finally:
            disable_ambient_telemetry()
        assert "rumba_invocations_total" in registry
        assert ambient_telemetry_registry() is None
        later = prepare_system("fft", scheme="treeErrors", seed=0)
        assert later.telemetry is None


class TestDashboard:
    def test_renders_after_invocations(self, instrumented_system, fft_inputs):
        system, telemetry = instrumented_system
        for i in range(3):
            system.run_invocation(fft_inputs[i * 300:(i + 1) * 300])
        frame = render_dashboard(telemetry)
        assert "fire rate" in frame
        assert "threshold trajectory" in frame
        assert "cumulative wall time by phase" in frame
        assert "3 invocations" in frame

    def test_renders_with_no_data(self):
        telemetry = Telemetry(app="fft", scheme="treeErrors",
                              registry=MetricsRegistry())
        frame = render_dashboard(telemetry)
        assert "0 invocations" in frame
