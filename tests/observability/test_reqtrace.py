"""Unit tests for the request-trace primitives (no server involved)."""

from __future__ import annotations

import pytest

from repro.observability.reqtrace import (
    STAGES,
    RequestTrace,
    TracingPolicy,
    new_trace_id,
)
from repro.serving import TracingConfig


class TestTraceIds:
    def test_nonzero_u64(self):
        for _ in range(1000):
            trace_id = new_trace_id()
            assert 0 < trace_id < (1 << 64)

    def test_unique_within_process(self):
        ids = {new_trace_id() for _ in range(10000)}
        assert len(ids) == 10000


class TestRequestTrace:
    def test_stamps_accumulate_in_order(self):
        trace = RequestTrace()
        trace.stamp("admit", at=1.0)
        trace.stamp("dequeue", at=2.0)
        trace.stamp("complete", at=3.5)
        assert trace.stage_names() == ["admit", "dequeue", "complete"]
        assert trace.events()[-1] == ("complete", 3.5)

    def test_stamp_without_at_uses_monotonic_now(self):
        trace = RequestTrace()
        recorded = trace.stamp("admit")
        assert recorded == trace.events()[0][1]

    def test_segments_sum_to_duration(self):
        trace = RequestTrace()
        for i, stage in enumerate(("admit", "dequeue", "compute", "complete")):
            trace.stamp(stage, at=float(i) * 0.25)
        segments = trace.segments()
        assert segments[0] == ("admit", 0.0)  # first event anchors at zero
        assert sum(d for _, d in segments) == pytest.approx(trace.duration())
        assert trace.duration() == pytest.approx(0.75)

    def test_clamp_pins_remote_stamps_to_monotonic(self):
        trace = RequestTrace()
        trace.stamp("admit", at=10.0)
        recorded = trace.stamp("shm_read", at=9.0, clamp=True)
        assert recorded == 10.0
        assert trace.is_monotonic()

    def test_unclamped_backwards_stamp_is_detectable(self):
        trace = RequestTrace()
        trace.stamp("admit", at=10.0)
        trace.stamp("shm_read", at=9.0)
        assert not trace.is_monotonic()

    def test_mark_sampled_promotes(self):
        trace = RequestTrace(sampled=False)
        assert not trace.sampled
        trace.mark_sampled()
        assert trace.sampled

    def test_explicit_trace_id_is_kept(self):
        trace = RequestTrace(trace_id=0xDEAD)
        assert trace.trace_id == 0xDEAD

    def test_zero_trace_id_means_assign_one(self):
        assert RequestTrace(trace_id=0).trace_id != 0

    def test_duration_with_fewer_than_two_events(self):
        trace = RequestTrace()
        assert trace.duration() == 0.0
        trace.stamp("admit")
        assert trace.duration() == 0.0

    def test_stage_catalog_is_ordered_and_unique(self):
        assert len(set(STAGES)) == len(STAGES)
        assert STAGES[0] == "router_recv" and STAGES[-1] == "net_send"
        # The single-node pipeline still starts at the TCP front-end.
        assert STAGES[2] == "net_recv"


class TestTracingPolicy:
    def test_disabled_returns_none(self):
        policy = TracingPolicy(enabled=False)
        assert policy.new_trace() is None

    def test_counter_sampling_is_exact(self):
        policy = TracingPolicy(sample_every=4)
        sampled = [policy.new_trace().sampled for _ in range(12)]
        assert sampled == [True, False, False, False] * 3

    def test_sample_every_one_keeps_everything(self):
        policy = TracingPolicy(sample_every=1)
        assert all(policy.new_trace().sampled for _ in range(16))

    def test_force_overrides_both_ways(self):
        policy = TracingPolicy(sample_every=1)
        assert policy.new_trace(force=False).sampled is False
        policy = TracingPolicy(sample_every=1 << 30)
        policy.new_trace()  # burn the one free sample at counter zero
        assert policy.new_trace(force=True).sampled is True

    def test_caller_supplied_trace_id_propagates(self):
        policy = TracingPolicy()
        assert policy.new_trace(trace_id=77).trace_id == 77

    def test_from_config(self):
        config = TracingConfig(sample_every=9, always_sample_errors=False)
        policy = TracingPolicy.from_config(config)
        assert policy.sample_every == 9
        assert policy.always_sample_errors is False
        assert policy.enabled is True

    def test_sample_every_floor_is_one(self):
        assert TracingPolicy(sample_every=0).sample_every == 1
