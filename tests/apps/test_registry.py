"""Unit tests for the benchmark registry (Table 1)."""

import numpy as np
import pytest

from repro.apps import APPLICATION_NAMES, all_applications, get_application
from repro.errors import UnknownApplicationError

TABLE1 = {
    "blackscholes": ("Financial Analysis", "3->8->8->1", "6->8->8->1",
                     "Mean Relative Error"),
    "fft": ("Signal Processing", "1->1->2", "1->4->4->2",
            "Mean Relative Error"),
    "inversek2j": ("Robotics", "2->2->2", "2->8->2", "Mean Relative Error"),
    "jmeint": ("3D Gaming", "18->32->2->2", "18->32->8->2", "# of mismatches"),
    "jpeg": ("Compression", "64->16->64", "64->16->64", "Mean Pixel Diff"),
    "kmeans": ("Machine Learning", "6->4->4->1", "6->8->4->1",
               "Mean Output Diff"),
    "sobel": ("Image Processing", "9->8->1", "9->8->1", "Mean Pixel Diff"),
}


class TestRegistry:
    def test_table1_order(self):
        assert APPLICATION_NAMES == tuple(TABLE1)

    @pytest.mark.parametrize("name", list(TABLE1))
    def test_table1_contents(self, name):
        domain, rumba, npu, metric = TABLE1[name]
        app = get_application(name)
        assert app.name == name
        assert app.domain == domain
        assert str(app.rumba_topology) == rumba
        assert str(app.npu_topology) == npu
        assert metric in app.metric_name

    def test_unknown_name(self):
        with pytest.raises(UnknownApplicationError):
            get_application("raytracer")

    def test_all_applications(self):
        apps = all_applications()
        assert [a.name for a in apps] == list(TABLE1)

    def test_fresh_instances(self):
        assert get_application("fft") is not get_application("fft")

    @pytest.mark.parametrize("name", list(TABLE1))
    def test_generators_match_kernel_signature(self, name):
        app = get_application(name)
        rng = np.random.default_rng(0)
        train = np.atleast_2d(app.train_inputs(rng))
        test = np.atleast_2d(app.test_inputs(rng))
        assert train.shape[1] == app.n_kernel_inputs
        assert test.shape[1] == app.n_kernel_inputs

    @pytest.mark.parametrize("name", list(TABLE1))
    def test_kernels_are_pure(self, name):
        """Re-execution safety (paper Sec. 2.2): every Table 1 kernel is pure."""
        from repro.core.recovery import verify_purity

        app = get_application(name)
        rng = np.random.default_rng(1)
        sample = np.atleast_2d(app.test_inputs(rng))[:32]
        report = verify_purity(app.exact, sample)
        assert report.is_pure

    @pytest.mark.parametrize("name", list(TABLE1))
    def test_offload_fraction_valid(self, name):
        app = get_application(name)
        assert 0.0 < app.offload_fraction <= 1.0
