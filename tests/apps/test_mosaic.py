"""Unit tests for the mosaic application (Fig. 3 case study)."""

import numpy as np
import pytest

from repro.apps.datasets import flower_image, gradient_image
from repro.apps.mosaic import (
    approx_average_brightness,
    average_brightness,
    build_mosaic,
    perforation_error_survey,
)
from repro.errors import ConfigurationError


class TestBrightness:
    def test_exact_is_mean(self):
        img = np.array([[0.0, 100.0], [200.0, 100.0]])
        assert average_brightness(img) == pytest.approx(100.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            average_brightness(np.empty((0, 0)))

    def test_perforated_close_on_uniform_image(self):
        img = np.full((64, 64), 80.0)
        approx = approx_average_brightness(img, skip_rate=0.98)
        assert approx == pytest.approx(80.0)

    def test_perforated_error_depends_on_input(self):
        """The Fig. 3 premise: same perforation, different per-image error."""
        errors = []
        for seed in range(30):
            img = flower_image((64, 64), seed=seed)
            exact = average_brightness(img)
            approx = approx_average_brightness(img, skip_rate=0.98)
            errors.append(abs(approx - exact) / exact)
        assert max(errors) > 3 * (sum(errors) / len(errors)) * 0.5
        assert np.std(errors) > 0.0

    def test_random_mode_needs_rng(self):
        img = flower_image((32, 32), seed=0)
        with pytest.raises(ConfigurationError):
            approx_average_brightness(img, 0.9, mode="random")


class TestBuildMosaic:
    def _tiles(self):
        return [np.full((8, 8), v) for v in (0.0, 64.0, 128.0, 192.0, 255.0)]

    def test_output_shape(self):
        target = gradient_image((32, 32))
        out = build_mosaic(target, self._tiles(), cell=8)
        assert out.shape == (32, 32)

    def test_picks_brightness_matched_tiles(self):
        target = np.full((16, 16), 130.0)
        out = build_mosaic(target, self._tiles(), cell=8)
        np.testing.assert_array_equal(out, 128.0)  # nearest tile brightness

    def test_gradient_uses_multiple_tiles(self):
        target = gradient_image((16, 64))
        out = build_mosaic(target, self._tiles(), cell=8)
        assert np.unique(out).size >= 3

    def test_approximate_brightness_can_mismatch_tiles(self):
        rng = np.random.default_rng(0)
        tiles = [flower_image((16, 16), seed=s) for s in range(30)]
        target = flower_image((64, 64), seed=99)
        exact = build_mosaic(target, tiles, cell=8)
        noisy = build_mosaic(
            target,
            tiles,
            cell=8,
            brightness_fn=lambda img: average_brightness(img)
            + rng.normal(0, 30.0),
        )
        assert not np.array_equal(exact, noisy)

    def test_validations(self):
        with pytest.raises(ConfigurationError):
            build_mosaic(gradient_image((16, 16)), [], cell=8)
        with pytest.raises(ConfigurationError):
            build_mosaic(gradient_image((16, 16)), self._tiles(), cell=0)
        with pytest.raises(ConfigurationError):
            build_mosaic(np.ones((4, 4)), self._tiles(), cell=8)


class TestSurvey:
    def test_fig3_shape(self):
        result = perforation_error_survey(n_images=100, seed=1)
        assert result.n_images == 100
        assert result.max_error > result.mean_error
        assert result.mean_error > 0.0

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            perforation_error_survey(n_images=0)
