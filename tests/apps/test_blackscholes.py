"""Unit and property tests for the blackscholes kernel."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.blackscholes import (
    RISK_FREE_RATE,
    RUMBA_COLUMNS,
    VOLATILITY,
    black_scholes_price,
    cumulative_normal,
    generate_options,
    make_application,
)


class TestCumulativeNormal:
    def test_midpoint(self):
        assert cumulative_normal(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_symmetry(self):
        x = np.linspace(-4, 4, 17)
        np.testing.assert_allclose(
            cumulative_normal(x) + cumulative_normal(-x), 1.0, atol=1e-12
        )

    def test_matches_erf(self):
        x = np.linspace(-5, 5, 101)
        exact = 0.5 * (1.0 + np.vectorize(math.erf)(x / math.sqrt(2.0)))
        # The A&S polynomial is accurate to ~7.5e-8.
        np.testing.assert_allclose(cumulative_normal(x), exact, atol=1e-6)

    def test_monotone(self):
        x = np.linspace(-6, 6, 200)
        assert np.all(np.diff(cumulative_normal(x)) >= 0.0)


def _option(spot, strike, time, otype=0.0):
    return np.array([[spot, strike, RISK_FREE_RATE, VOLATILITY, time, otype]])


class TestBlackScholesPrice:
    def test_call_price_positive(self):
        price = black_scholes_price(_option(100.0, 100.0, 1.0))[0, 0]
        assert price > 0.0

    def test_deep_in_the_money_call(self):
        # S >> K: call worth ~ S - K e^{-rT}.
        price = black_scholes_price(_option(200.0, 10.0, 1.0))[0, 0]
        expected = 200.0 - 10.0 * math.exp(-RISK_FREE_RATE)
        assert price == pytest.approx(expected, rel=1e-6)

    def test_deep_out_of_the_money_call(self):
        price = black_scholes_price(_option(10.0, 200.0, 0.5))[0, 0]
        assert price == pytest.approx(0.0, abs=1e-6)

    def test_put_call_parity(self):
        """C - P = S - K e^{-rT} for identical parameters."""
        spot, strike, time = 90.0, 110.0, 1.5
        call = black_scholes_price(_option(spot, strike, time, 0.0))[0, 0]
        put = black_scholes_price(_option(spot, strike, time, 1.0))[0, 0]
        parity = spot - strike * math.exp(-RISK_FREE_RATE * time)
        assert call - put == pytest.approx(parity, abs=1e-4)

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(10.0, 200.0),
        st.floats(10.0, 200.0),
        st.floats(0.05, 3.0),
    )
    def test_call_bounds_property(self, spot, strike, time):
        """max(S - K e^{-rT}, 0) <= C <= S (no-arbitrage bounds)."""
        price = black_scholes_price(_option(spot, strike, time))[0, 0]
        lower = max(spot - strike * math.exp(-RISK_FREE_RATE * time), 0.0)
        assert price >= lower - 1e-4
        assert price <= spot + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.floats(10.0, 200.0), st.floats(0.1, 2.9))
    def test_call_increases_with_time(self, strike, time):
        a = black_scholes_price(_option(100.0, strike, time))[0, 0]
        b = black_scholes_price(_option(100.0, strike, time + 0.1))[0, 0]
        assert b >= a - 1e-6

    def test_batch_shape(self, rng):
        options = generate_options(rng, 100)
        assert black_scholes_price(options).shape == (100, 1)


class TestGenerator:
    def test_table1_sizes(self, rng):
        assert generate_options(rng, 5000).shape == (5000, 6)

    def test_constant_columns(self, rng):
        options = generate_options(rng, 100)
        assert np.all(options[:, 2] == RISK_FREE_RATE)
        assert np.all(options[:, 3] == VOLATILITY)
        assert np.all(options[:, 5] == 0.0)  # calls only

    def test_rumba_columns_are_the_varying_ones(self, rng):
        options = generate_options(rng, 200)
        for col in RUMBA_COLUMNS:
            assert np.std(options[:, col]) > 0.0


class TestApplication:
    def test_table1_row(self):
        app = make_application()
        assert app.name == "blackscholes"
        assert app.domain == "Financial Analysis"
        assert str(app.rumba_topology) == "3->8->8->1"
        assert str(app.npu_topology) == "6->8->8->1"
        assert app.metric_name == "Mean Relative Error"

    def test_element_errors_nonnegative(self, rng):
        app = make_application()
        x = app.test_inputs(rng)[:100]
        exact = app.exact(x)
        errs = app.element_errors(exact + 1.0, exact)
        assert np.all(errs >= 0.0)
