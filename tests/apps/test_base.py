"""Unit tests for the Application abstraction and error metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.base import (
    Application,
    absolute_errors,
    mean_absolute_diff,
    mean_relative_error,
    mismatch_errors,
    mismatch_fraction,
    relative_errors,
)
from repro.errors import ConfigurationError
from repro.hardware.energy import InstructionMix
from repro.nn.mlp import Topology

outputs = arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 30), st.integers(1, 4)),
    elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
)


class TestRelativeErrors:
    def test_exact_match_is_zero(self):
        e = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(relative_errors(e, e), [0.0, 0.0])

    def test_scales_with_magnitude(self):
        exact = np.array([[10.0], [100.0]])
        approx = exact + 1.0
        errs = relative_errors(approx, exact)
        assert errs[0] == pytest.approx(0.1)
        assert errs[1] == pytest.approx(0.01)

    def test_epsilon_floors_denominator(self):
        exact = np.array([[0.0]])
        approx = np.array([[1.0]])
        assert relative_errors(approx, exact, epsilon=2.0)[0] == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            relative_errors(np.ones((2, 1)), np.ones((3, 1)))

    def test_mean_metric(self):
        exact = np.array([[1.0], [1.0]])
        approx = np.array([[1.1], [1.3]])
        assert mean_relative_error(approx, exact) == pytest.approx(0.2)

    @settings(max_examples=40, deadline=None)
    @given(outputs)
    def test_nonnegative(self, exact):
        approx = exact + 0.5
        assert np.all(relative_errors(approx, exact) >= 0.0)


class TestMismatchErrors:
    def test_one_hot_decisions(self):
        exact = np.array([[1.0, 0.0], [0.0, 1.0]])
        approx = np.array([[0.8, 0.2], [0.9, 0.1]])  # second flipped
        np.testing.assert_array_equal(mismatch_errors(approx, exact), [0.0, 1.0])

    def test_fraction(self):
        exact = np.array([[1.0, 0.0]] * 4)
        approx = exact.copy()
        approx[0] = [0.0, 1.0]
        assert mismatch_fraction(approx, exact) == pytest.approx(0.25)

    def test_single_column_rounds(self):
        exact = np.array([[1.0], [0.0]])
        approx = np.array([[0.8], [0.4]])
        np.testing.assert_array_equal(mismatch_errors(approx, exact), [0.0, 0.0])

    def test_errors_binary(self):
        rng = np.random.default_rng(0)
        exact = rng.random((20, 2))
        approx = rng.random((20, 2))
        errs = mismatch_errors(approx, exact)
        assert set(np.unique(errs)) <= {0.0, 1.0}


class TestAbsoluteErrors:
    def test_pixel_scale(self):
        exact = np.array([[100.0]])
        approx = np.array([[125.5]])
        assert absolute_errors(approx, exact, scale=255.0)[0] == pytest.approx(0.1)

    def test_mean_over_outputs(self):
        exact = np.zeros((1, 2))
        approx = np.array([[10.0, 30.0]])
        assert absolute_errors(approx, exact, scale=1.0)[0] == pytest.approx(20.0)

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            absolute_errors(np.ones((1, 1)), np.ones((1, 1)), scale=0.0)

    def test_mean_metric(self):
        exact = np.zeros((2, 1))
        approx = np.array([[51.0], [102.0]])
        assert mean_absolute_diff(approx, exact, scale=255.0) == pytest.approx(0.3)


def _dummy_app(**overrides):
    defaults = dict(
        name="dummy",
        domain="Testing",
        kernel=lambda x: x.sum(axis=1, keepdims=True),
        train_inputs=lambda rng: rng.random((10, 2)),
        test_inputs=lambda rng: rng.random((10, 2)),
        rumba_topology=Topology.parse("2->2->1"),
        npu_topology=Topology.parse("2->4->1"),
        metric_name="Mean Relative Error",
        element_error_fn=relative_errors,
        quality_metric_fn=mean_relative_error,
        instruction_mix=InstructionMix(int_ops=5),
    )
    defaults.update(overrides)
    return Application(**defaults)


class TestApplication:
    def test_exact_output_shape(self, rng):
        app = _dummy_app()
        out = app.exact(rng.random((7, 2)))
        assert out.shape == (7, 1)

    def test_exact_rejects_wrong_width(self, rng):
        app = _dummy_app()
        with pytest.raises(ConfigurationError):
            app.exact(rng.random((3, 5)))

    def test_rumba_features_projection(self):
        app = _dummy_app(
            rumba_topology=Topology.parse("1->2->1"),
            rumba_input_columns=(1,),
        )
        x = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(app.rumba_features(x), [[2.0], [4.0]])

    def test_rumba_features_identity_without_projection(self):
        app = _dummy_app()
        x = np.array([[1.0, 2.0]])
        np.testing.assert_array_equal(app.rumba_features(x), x)

    def test_column_count_validated(self):
        with pytest.raises(ConfigurationError, match="columns"):
            _dummy_app(
                rumba_topology=Topology.parse("2->2->1"),
                rumba_input_columns=(0,),
            )

    def test_output_counts_must_agree(self):
        with pytest.raises(ConfigurationError, match="outputs"):
            _dummy_app(npu_topology=Topology.parse("2->4->2"))

    def test_offload_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            _dummy_app(offload_fraction=0.0)
        with pytest.raises(ConfigurationError):
            _dummy_app(offload_fraction=1.5)

    def test_n_kernel_inputs_from_npu_topology(self):
        assert _dummy_app().n_kernel_inputs == 2
