"""Unit tests for the sobel benchmark."""

import numpy as np
import pytest

from repro.apps.datasets import (
    checkerboard,
    extract_patches3x3,
    gradient_image,
    natural_image,
)
from repro.apps.sobel import KERNEL_X, KERNEL_Y, make_application, sobel_image, sobel_kernel
from repro.errors import ConfigurationError


class TestSobelKernel:
    def test_flat_patch_zero_gradient(self):
        patch = np.full((1, 9), 120.0)
        assert sobel_kernel(patch)[0, 0] == 0.0

    def test_vertical_edge_detected(self):
        # Columns: 0, 0, 255 -> strong horizontal gradient.
        patch = np.array([[0.0, 0.0, 255.0] * 3])
        assert sobel_kernel(patch)[0, 0] > 100.0

    def test_output_clamped(self, rng):
        patches = rng.uniform(0, 255, size=(100, 9))
        out = sobel_kernel(patches)
        assert out.min() >= 0.0 and out.max() <= 255.0

    def test_rotation_symmetry(self):
        """A vertical edge scores the same as the equivalent horizontal one."""
        vertical = np.array([[0.0, 0.0, 255.0] * 3])
        horizontal = np.array([[0.0] * 3 + [0.0] * 3 + [255.0] * 3])
        assert sobel_kernel(vertical)[0, 0] == pytest.approx(
            sobel_kernel(horizontal)[0, 0]
        )

    def test_invariant_to_brightness_offset(self, rng):
        patches = rng.uniform(50, 150, size=(20, 9))
        shifted = patches + 50.0
        np.testing.assert_allclose(
            sobel_kernel(patches), sobel_kernel(shifted), atol=1e-9
        )

    def test_masks_are_standard_sobel(self):
        assert KERNEL_X.tolist() == [-1, 0, 1, -2, 0, 2, -1, 0, 1]
        assert KERNEL_Y.tolist() == [-1, -2, -1, 0, 0, 0, 1, 2, 1]

    def test_wrong_width(self):
        with pytest.raises(ConfigurationError):
            sobel_kernel(np.ones((2, 8)))


class TestSobelImage:
    def test_shape_preserved(self):
        img = natural_image((30, 40), seed=1)
        assert sobel_image(img).shape == (30, 40)

    def test_ramp_has_uniform_gradient(self):
        img = gradient_image((16, 64))
        edges = sobel_image(img)
        interior = edges[1:-1, 1:-1]
        # A linear ramp has constant gradient magnitude everywhere inside.
        assert interior.std() == pytest.approx(0.0, abs=1e-9)
        assert interior.mean() > 0.0

    def test_checkerboard_edges_on_tile_boundaries(self):
        img = checkerboard((32, 32), tile=8)
        edges = sobel_image(img)
        # Interior of tiles is flat; boundaries light up.
        assert edges[4, 4] == 0.0
        assert edges[4, 7] > 50.0

    def test_matches_kernel_on_patches(self):
        img = natural_image((12, 12), seed=2)
        expected = sobel_kernel(extract_patches3x3(img)).reshape(12, 12)
        np.testing.assert_array_equal(sobel_image(img), expected)


class TestApplication:
    def test_table1_row(self):
        app = make_application()
        assert str(app.rumba_topology) == "9->8->1"
        assert str(app.npu_topology) == "9->8->1"
        assert app.domain == "Image Processing"
