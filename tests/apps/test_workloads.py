"""Tests for the invocation-stream workload generators."""

import numpy as np
import pytest

from repro.apps import get_application
from repro.apps.workloads import bursty_stream, drifting_stream, invocation_stream
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def fft_app():
    return get_application("fft")


class TestInvocationStream:
    def test_shapes(self, fft_app):
        chunks = invocation_stream(fft_app, 5, 200, seed=0)
        assert len(chunks) == 5
        for chunk in chunks:
            assert chunk.shape == (200, 1)

    def test_deterministic_per_seed(self, fft_app):
        a = invocation_stream(fft_app, 3, 100, seed=4)
        b = invocation_stream(fft_app, 3, 100, seed=4)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_chunks_differ(self, fft_app):
        chunks = invocation_stream(fft_app, 2, 100, seed=0)
        assert not np.array_equal(chunks[0], chunks[1])

    def test_large_invocations_refill_buffer(self, fft_app):
        chunks = invocation_stream(fft_app, 2, 7000, seed=0)
        assert all(c.shape == (7000, 1) for c in chunks)

    def test_validations(self, fft_app):
        with pytest.raises(ConfigurationError):
            invocation_stream(fft_app, 0, 10)
        with pytest.raises(ConfigurationError):
            invocation_stream(fft_app, 1, 0)


class TestDriftingStream:
    def test_t_spans_unit_interval(self, fft_app):
        seen = []

        def record(chunk, t):
            seen.append(t)
            return chunk

        drifting_stream(fft_app, 5, 50, drift=record, seed=0)
        assert seen[0] == 0.0 and seen[-1] == 1.0

    def test_drift_applied(self, fft_app):
        chunks = drifting_stream(
            fft_app, 3, 50, drift=lambda x, t: x * (1.0 - t), seed=0
        )
        assert np.all(chunks[-1] == 0.0)
        assert not np.all(chunks[0] == 0.0)

    def test_shape_preserving_enforced(self, fft_app):
        with pytest.raises(ConfigurationError):
            drifting_stream(fft_app, 2, 50, drift=lambda x, t: x[:10], seed=0)


class TestBurstyStream:
    def test_bursts_on_period(self, fft_app):
        chunks = bursty_stream(
            fft_app, 8, 50, hard=lambda x: np.zeros_like(x),
            burst_period=4, seed=0,
        )
        for i, chunk in enumerate(chunks):
            if (i + 1) % 4 == 0:
                assert np.all(chunk == 0.0)
            else:
                assert not np.all(chunk == 0.0)

    def test_validations(self, fft_app):
        with pytest.raises(ConfigurationError):
            bursty_stream(fft_app, 2, 10, hard=lambda x: x, burst_period=0)
        with pytest.raises(ConfigurationError):
            bursty_stream(fft_app, 2, 10, hard=lambda x: x[:1], burst_period=1)

    def test_tuner_reacts_to_bursts(self, fft_app):
        """Integration: energy-mode tuning rides through hard bursts."""
        from repro.core import RumbaConfig, TunerMode, prepare_system

        config = RumbaConfig(
            scheme="treeErrors", mode=TunerMode.ENERGY,
            iteration_budget_fraction=0.2, initial_threshold=0.3,
        )
        system = prepare_system("fft", scheme="treeErrors", config=config,
                                seed=0)
        # Hard burst: concentrate inputs where the 1->1->2 net is weakest.
        chunks = bursty_stream(
            fft_app, 12, 300,
            hard=lambda x: 0.2 + 0.1 * x, burst_period=3, seed=0,
        )
        records = system.run_stream(chunks, measure_quality=False)
        fixes = [r.fix_fraction for r in records]
        assert max(fixes) > min(fixes)  # the tuner actually moved
