"""Unit tests for the kmeans benchmark and the Lloyd's algorithm substrate."""

import numpy as np
import pytest

from repro.apps.datasets import natural_image
from repro.apps.kmeans import (
    DEFAULT_K,
    assignment_kernel,
    lloyd_kmeans,
    make_application,
    pixel_features,
    segment_image,
)
from repro.errors import ConfigurationError


class TestLloydKmeans:
    def test_recovers_separated_clusters(self, rng):
        centers = np.array([[0.0] * 6, [100.0] * 6, [200.0] * 6])
        points = np.vstack([
            c + rng.normal(0, 1.0, size=(50, 6)) for c in centers
        ])
        found = lloyd_kmeans(points, k=3, rng=rng)
        found_sorted = found[np.argsort(found[:, 0])]
        np.testing.assert_allclose(found_sorted, centers, atol=2.0)

    def test_centroid_count(self, rng):
        points = rng.random((100, 6)) * 255
        assert lloyd_kmeans(points, k=5, rng=rng).shape == (5, 6)

    def test_too_few_points(self, rng):
        with pytest.raises(ConfigurationError):
            lloyd_kmeans(rng.random((3, 6)), k=5)

    def test_invalid_k(self, rng):
        with pytest.raises(ConfigurationError):
            lloyd_kmeans(rng.random((10, 6)), k=0)

    def test_converges_on_duplicate_points(self):
        points = np.tile(np.arange(6.0), (20, 1))
        centroids = lloyd_kmeans(points, k=2, rng=np.random.default_rng(0))
        assert np.all(np.isfinite(centroids))

    def test_assignment_cost_decreases(self, rng):
        points = rng.random((200, 6)) * 255
        centroids = lloyd_kmeans(points, k=4, rng=rng, max_iters=50)
        final_cost = np.min(
            np.linalg.norm(points[:, None] - centroids[None], axis=2), axis=1
        ).sum()
        one_step = lloyd_kmeans(points, k=4, rng=np.random.default_rng(rng.integers(1 << 31)), max_iters=1)
        initial_cost = np.min(
            np.linalg.norm(points[:, None] - one_step[None], axis=2), axis=1
        ).sum()
        assert final_cost <= initial_cost * 1.05


class TestPixelFeatures:
    def test_shape(self):
        img = natural_image((20, 30), seed=1)
        feats = pixel_features(img)
        assert feats.shape == (600, 6)

    def test_intensity_column(self):
        img = natural_image((10, 10), seed=2)
        feats = pixel_features(img)
        np.testing.assert_array_equal(feats[:, 0], img.ravel())

    def test_local_stats_ordering(self):
        img = natural_image((16, 16), seed=3)
        feats = pixel_features(img)
        local_mean, local_max, local_min = feats[:, 3], feats[:, 4], feats[:, 5]
        assert np.all(local_min <= local_mean + 1e-9)
        assert np.all(local_mean <= local_max + 1e-9)

    def test_position_normalized(self):
        feats = pixel_features(natural_image((8, 8), seed=4))
        assert feats[:, 1].max() == pytest.approx(255.0)
        assert feats[:, 2].min() == pytest.approx(0.0)

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            pixel_features(np.ones(10))


class TestAssignmentKernel:
    def test_outputs_are_centroid_intensities(self):
        img = natural_image((16, 16), seed=5)
        out = assignment_kernel(pixel_features(img))
        assert out.shape == (256, 1)
        # Output values come from a small discrete set (the centroids).
        assert np.unique(np.round(out, 6)).size <= DEFAULT_K

    def test_wrong_width(self):
        with pytest.raises(ConfigurationError):
            assignment_kernel(np.ones((4, 5)))

    def test_deterministic(self):
        img = natural_image((12, 12), seed=6)
        feats = pixel_features(img)
        np.testing.assert_array_equal(
            assignment_kernel(feats), assignment_kernel(feats)
        )


class TestSegmentImage:
    def test_output_shape(self):
        img = natural_image((24, 18), seed=7)
        assert segment_image(img).shape == (24, 18)

    def test_quantizes_intensities(self):
        img = natural_image((32, 32), seed=8)
        seg = segment_image(img)
        assert np.unique(np.round(seg, 6)).size <= DEFAULT_K


class TestApplication:
    def test_table1_row(self):
        app = make_application()
        assert str(app.rumba_topology) == "6->4->4->1"
        assert str(app.npu_topology) == "6->8->4->1"
        assert app.metric_name == "Mean Output Diff"
        assert app.domain == "Machine Learning"
