"""Unit and property tests for the jpeg benchmark."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.datasets import image_to_blocks, natural_image
from repro.apps.jpeg import (
    STANDARD_LUMINANCE_QTABLE,
    compress_image,
    dct2_block,
    idct2_block,
    jpeg_block_kernel,
    make_application,
)
from repro.errors import ConfigurationError

blocks = arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 5), st.just(64)),
    elements=st.floats(0.0, 255.0, allow_nan=False),
)


class TestDCT:
    def test_roundtrip(self, rng):
        data = rng.uniform(0, 255, size=(10, 64))
        np.testing.assert_allclose(idct2_block(dct2_block(data)), data, atol=1e-9)

    def test_constant_block_has_only_dc(self):
        block = np.full((1, 64), 100.0)
        coeffs = dct2_block(block)
        assert abs(coeffs[0, 0]) > 0
        np.testing.assert_allclose(coeffs[0, 1:], 0.0, atol=1e-9)

    def test_dc_value(self):
        block = np.full((1, 64), 8.0)
        coeffs = dct2_block(block)
        # Orthonormal DCT: DC = mean * 8 (sqrt(1/8)*sqrt(1/8)*64*v = 8v).
        assert coeffs[0, 0] == pytest.approx(64.0)

    def test_energy_preserved(self, rng):
        """Orthonormal transform preserves the L2 norm (Parseval)."""
        data = rng.uniform(-128, 128, size=(5, 64))
        coeffs = dct2_block(data)
        np.testing.assert_allclose(
            np.sum(coeffs**2, axis=1), np.sum(data**2, axis=1), rtol=1e-9
        )

    def test_wrong_width(self):
        with pytest.raises(ConfigurationError):
            dct2_block(np.ones((2, 63)))
        with pytest.raises(ConfigurationError):
            idct2_block(np.ones((2, 16)))


class TestJpegKernel:
    def test_output_in_pixel_range(self, rng):
        data = rng.uniform(0, 255, size=(20, 64))
        out = jpeg_block_kernel(data)
        assert out.min() >= 0.0 and out.max() <= 255.0

    def test_lossy_but_close(self, rng):
        img = natural_image((64, 64), seed=1)
        data = image_to_blocks(img)
        out = jpeg_block_kernel(data)
        err = np.abs(out - data).mean()
        assert 0.0 < err < 20.0  # visible compression, reasonable quality

    def test_constant_block_nearly_exact(self):
        block = np.full((1, 64), 96.0)
        out = jpeg_block_kernel(block)
        np.testing.assert_allclose(out, 96.0, atol=1.0)

    def test_coarser_quantization_more_error(self, rng):
        img = natural_image((64, 64), seed=3, detail=1.0)
        data = image_to_blocks(img)
        fine = np.abs(jpeg_block_kernel(data, quality_scale=1.0) - data).mean()
        coarse = np.abs(jpeg_block_kernel(data, quality_scale=4.0) - data).mean()
        assert coarse > fine

    def test_invalid_quality(self):
        with pytest.raises(ConfigurationError):
            jpeg_block_kernel(np.ones((1, 64)), quality_scale=0.0)

    @settings(max_examples=25, deadline=None)
    @given(blocks)
    def test_idempotent_property(self, data):
        """Re-compressing an already-compressed block is a fixed point.

        Quantized coefficients re-quantize to themselves, up to clipping.
        """
        once = jpeg_block_kernel(data)
        if once.min() > 0.5 and once.max() < 254.5:  # clipping inactive
            twice = jpeg_block_kernel(once)
            np.testing.assert_allclose(twice, once, atol=1e-6)


class TestCompressImage:
    def test_shape_cropped_to_blocks(self):
        img = natural_image((67, 70), seed=2)
        out = compress_image(img)
        assert out.shape == (64, 64)

    def test_custom_block_fn(self):
        img = natural_image((32, 32), seed=2)
        out = compress_image(img, block_fn=lambda blocks: blocks * 0.0)
        np.testing.assert_array_equal(out, 0.0)


class TestQTable:
    def test_standard_values(self):
        assert STANDARD_LUMINANCE_QTABLE[0, 0] == 16
        assert STANDARD_LUMINANCE_QTABLE[7, 7] == 99
        assert STANDARD_LUMINANCE_QTABLE.shape == (8, 8)


class TestApplication:
    def test_table1_row(self):
        app = make_application()
        assert str(app.rumba_topology) == "64->16->64"
        assert str(app.npu_topology) == "64->16->64"
        assert app.metric_name == "Mean Pixel Diff"
