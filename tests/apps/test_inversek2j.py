"""Unit and property tests for the inversek2j benchmark."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.inversek2j import (
    LINK1,
    LINK2,
    follow_path,
    forward_kinematics,
    generate_targets,
    inverse_kinematics,
    make_application,
)
from repro.errors import ConfigurationError


class TestInverseKinematics:
    def test_roundtrip_on_reachable_points(self, rng):
        targets = generate_targets(rng, 500)
        angles = inverse_kinematics(targets)
        recovered = forward_kinematics(angles)
        np.testing.assert_allclose(recovered, targets, atol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(0.16, 0.94),
        st.floats(-np.pi, np.pi),
    )
    def test_roundtrip_property(self, radius_fraction, angle):
        reach = LINK1 + LINK2
        target = np.array([
            [radius_fraction * reach * np.cos(angle),
             radius_fraction * reach * np.sin(angle)]
        ])
        angles = inverse_kinematics(target)
        np.testing.assert_allclose(forward_kinematics(angles), target, atol=1e-9)

    def test_unreachable_point_clamped(self):
        target = np.array([[5.0, 0.0]])  # beyond max reach of 1.0
        angles = inverse_kinematics(target)
        recovered = forward_kinematics(angles)
        # Clamped solution lands on the workspace boundary.
        assert np.hypot(*recovered[0]) == pytest.approx(LINK1 + LINK2)

    def test_straight_arm_at_full_reach(self):
        target = np.array([[LINK1 + LINK2, 0.0]])
        angles = inverse_kinematics(target)
        assert angles[0, 1] == pytest.approx(0.0, abs=1e-9)  # elbow straight

    def test_elbow_angle_in_range(self, rng):
        angles = inverse_kinematics(generate_targets(rng, 300))
        assert np.all(angles[:, 1] >= 0.0)
        assert np.all(angles[:, 1] <= np.pi)

    def test_wrong_width(self):
        with pytest.raises(ConfigurationError):
            inverse_kinematics(np.ones((3, 3)))
        with pytest.raises(ConfigurationError):
            forward_kinematics(np.ones((3, 1)))


class TestFollowPath:
    def test_trajectory_tracks_waypoints(self, rng):
        waypoints = generate_targets(rng, 50)
        trajectory = follow_path(waypoints)
        # Unwrapping only shifts by multiples of 2*pi: FK is unchanged.
        np.testing.assert_allclose(
            forward_kinematics(trajectory), waypoints, atol=1e-9
        )

    def test_trajectory_is_continuous(self):
        # A circular sweep through the atan2 branch cut.
        angles = np.linspace(-np.pi * 0.95, np.pi * 0.95, 60)
        waypoints = 0.7 * np.column_stack([np.cos(angles), np.sin(angles)])
        trajectory = follow_path(waypoints)
        steps = np.abs(np.diff(trajectory, axis=0))
        assert steps.max() < 1.0  # no 2*pi jumps survive unwrapping

    def test_wrong_width(self):
        with pytest.raises(ConfigurationError):
            follow_path(np.ones((4, 3)))


class TestGenerator:
    def test_all_targets_reachable(self, rng):
        targets = generate_targets(rng, 1000)
        radii = np.hypot(targets[:, 0], targets[:, 1])
        assert np.all(radii <= LINK1 + LINK2)
        assert np.all(radii >= abs(LINK1 - LINK2))

    def test_table1_size(self, rng):
        assert generate_targets(rng, 10000).shape == (10000, 2)


class TestApplication:
    def test_table1_row(self):
        app = make_application()
        assert str(app.rumba_topology) == "2->2->2"
        assert str(app.npu_topology) == "2->8->2"
        assert app.domain == "Robotics"
