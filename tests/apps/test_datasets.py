"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.datasets import (
    blocks_to_image,
    checkerboard,
    extract_patches3x3,
    flower_image,
    gradient_image,
    image_to_blocks,
    natural_image,
)
from repro.errors import ConfigurationError


class TestNaturalImage:
    def test_range_and_shape(self):
        img = natural_image((64, 48), seed=3)
        assert img.shape == (64, 48)
        assert img.min() >= 0.0 and img.max() <= 255.0

    def test_deterministic_per_seed(self):
        np.testing.assert_array_equal(
            natural_image((32, 32), seed=5), natural_image((32, 32), seed=5)
        )

    def test_different_seeds_differ(self):
        a = natural_image((32, 32), seed=1)
        b = natural_image((32, 32), seed=2)
        assert not np.array_equal(a, b)

    def test_detail_increases_high_frequency_energy(self):
        smooth = natural_image((128, 128), seed=9, detail=0.0)
        detailed = natural_image((128, 128), seed=9, detail=1.8)
        # Gradient magnitude as a proxy for high-frequency content.
        def hf(img):
            return float(np.abs(np.diff(img, axis=1)).mean())
        assert hf(detailed) > hf(smooth)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            natural_image((4, 4))

    def test_detail_bounds(self):
        with pytest.raises(ConfigurationError):
            natural_image((32, 32), detail=2.5)


class TestFlowerImage:
    def test_range(self):
        img = flower_image((32, 32), seed=11)
        assert img.min() >= 0.0 and img.max() <= 255.0

    def test_population_varies_in_brightness(self):
        means = [flower_image((32, 32), seed=s).mean() for s in range(20)]
        assert np.std(means) > 5.0  # input-dependence needs spread


class TestStructuredImages:
    def test_checkerboard_two_levels(self):
        img = checkerboard((16, 16), tile=4)
        assert set(np.unique(img)) == {40.0, 215.0}

    def test_checkerboard_invalid_tile(self):
        with pytest.raises(ConfigurationError):
            checkerboard(tile=0)

    def test_gradient_monotone(self):
        img = gradient_image((8, 32))
        assert np.all(np.diff(img[0]) > 0)
        assert img[0, 0] == 0.0 and img[0, -1] == 255.0


class TestBlocking:
    def test_roundtrip(self):
        img = natural_image((64, 64), seed=2)
        blocks = image_to_blocks(img)
        restored = blocks_to_image(blocks, img.shape)
        np.testing.assert_array_equal(restored, img)

    def test_crops_to_block_multiple(self):
        img = natural_image((67, 70), seed=2)
        blocks = image_to_blocks(img)
        assert blocks.shape == ((67 // 8) * (70 // 8), 64)

    def test_block_layout_row_major(self):
        img = np.arange(64.0).reshape(8, 8)
        blocks = image_to_blocks(img)
        np.testing.assert_array_equal(blocks[0], img.ravel())

    def test_too_small_image(self):
        with pytest.raises(ConfigurationError):
            image_to_blocks(np.ones((4, 4)))

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            image_to_blocks(np.ones((8, 8, 3)))

    def test_blocks_to_image_validates_shape(self):
        with pytest.raises(ConfigurationError):
            blocks_to_image(np.ones((3, 64)), (16, 16))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(8, 40), st.integers(8, 40))
    def test_roundtrip_property(self, h, w):
        img = np.arange(h * w, dtype=float).reshape(h, w)
        blocks = image_to_blocks(img)
        restored = blocks_to_image(blocks, img.shape)
        hc, wc = (h // 8) * 8, (w // 8) * 8
        np.testing.assert_array_equal(restored, img[:hc, :wc])


class TestPatches:
    def test_shape(self):
        img = natural_image((16, 24), seed=1)
        patches = extract_patches3x3(img)
        assert patches.shape == (16 * 24, 9)

    def test_center_column_is_image(self):
        img = natural_image((12, 12), seed=4)
        patches = extract_patches3x3(img)
        np.testing.assert_array_equal(patches[:, 4], img.ravel())

    def test_interior_patch_values(self):
        img = np.arange(25.0).reshape(5, 5)
        patches = extract_patches3x3(img)
        center = patches[2 * 5 + 2]  # pixel (2, 2)
        expected = img[1:4, 1:4].ravel()
        np.testing.assert_array_equal(center, expected)

    def test_edge_replication(self):
        img = np.arange(9.0).reshape(3, 3)
        patches = extract_patches3x3(img)
        corner = patches[0]  # pixel (0, 0): replicated edges
        assert corner[0] == img[0, 0]  # top-left neighbor replicates
        assert corner[4] == img[0, 0]

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            extract_patches3x3(np.ones(10))
