"""Unit and property tests for the jmeint triangle-intersection kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.jmeint import (
    generate_triangle_pairs,
    icosahedron,
    intersection_kernel,
    make_application,
    mesh_collision,
    transform_mesh,
    triangles_intersect,
)
from repro.errors import ConfigurationError


def _pair(tri1, tri2):
    return np.concatenate(
        [np.asarray(tri1, float).ravel(), np.asarray(tri2, float).ravel()]
    ).reshape(1, 18)


# Canonical triangles for directed tests.
BASE = [(0, 0, 0), (1, 0, 0), (0, 1, 0)]           # in z=0 plane
PIERCING = [(0.2, 0.2, -1), (0.2, 0.2, 1), (0.3, 0.4, 1)]   # crosses z=0 inside BASE
PARALLEL_ABOVE = [(0, 0, 1), (1, 0, 1), (0, 1, 1)]  # lifted copy
FAR_AWAY = [(10, 10, 10), (11, 10, 10), (10, 11, 10)]
TOUCHING_EDGE = [(1, 0, 0), (2, 0, 0), (1, 1, 0)]   # shares vertex (1,0,0)


class TestTrianglesIntersect:
    def test_piercing_detected(self):
        assert triangles_intersect(_pair(BASE, PIERCING))[0]

    def test_parallel_planes_disjoint(self):
        assert not triangles_intersect(_pair(BASE, PARALLEL_ABOVE))[0]

    def test_far_away_disjoint(self):
        assert not triangles_intersect(_pair(BASE, FAR_AWAY))[0]

    def test_identical_triangles_intersect(self):
        assert triangles_intersect(_pair(BASE, BASE))[0]

    def test_shared_vertex_counts_as_intersection(self):
        assert triangles_intersect(_pair(BASE, TOUCHING_EDGE))[0]

    def test_symmetric_under_swap(self, rng):
        pairs = generate_triangle_pairs(rng, 200)
        swapped = np.concatenate([pairs[:, 9:], pairs[:, :9]], axis=1)
        np.testing.assert_array_equal(
            triangles_intersect(pairs), triangles_intersect(swapped)
        )

    def test_invariant_to_vertex_order(self, rng):
        pairs = generate_triangle_pairs(rng, 100)
        tri1 = pairs[:, :9].reshape(-1, 3, 3)
        permuted = tri1[:, [2, 0, 1], :].reshape(-1, 9)
        shuffled = np.concatenate([permuted, pairs[:, 9:]], axis=1)
        np.testing.assert_array_equal(
            triangles_intersect(pairs), triangles_intersect(shuffled)
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(-2.0, 2.0), st.floats(-2.0, 2.0), st.floats(-2.0, 2.0),
        st.floats(0.1, 3.0),
    )
    def test_invariant_to_translation_and_scale(self, dx, dy, dz, scale):
        pair = _pair(BASE, PIERCING)
        tri = pair.reshape(1, 6, 3)
        moved = (tri * scale + np.array([dx, dy, dz])).reshape(1, 18)
        assert triangles_intersect(moved)[0]

    def test_wrong_width(self):
        with pytest.raises(ConfigurationError):
            triangles_intersect(np.ones((2, 17)))


class TestIntersectionKernel:
    def test_one_hot_encoding(self, rng):
        out = intersection_kernel(generate_triangle_pairs(rng, 50))
        assert out.shape == (50, 2)
        np.testing.assert_array_equal(out.sum(axis=1), 1.0)
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_consistent_with_boolean(self, rng):
        pairs = generate_triangle_pairs(rng, 100)
        hit = triangles_intersect(pairs)
        out = intersection_kernel(pairs)
        np.testing.assert_array_equal(out[:, 0] == 1.0, hit)


class TestMeshCollision:
    def test_icosahedron_geometry(self):
        mesh = icosahedron()
        assert mesh.shape == (20, 3, 3)
        radii = np.linalg.norm(mesh.reshape(-1, 3), axis=1)
        np.testing.assert_allclose(radii, 1.0, atol=1e-9)

    def test_icosahedron_radius_scales(self):
        mesh = icosahedron(radius=2.5)
        radii = np.linalg.norm(mesh.reshape(-1, 3), axis=1)
        np.testing.assert_allclose(radii, 2.5, atol=1e-9)

    def test_overlapping_meshes_collide(self):
        a = icosahedron()
        b = transform_mesh(icosahedron(), offset=(0.5, 0.0, 0.0))
        assert mesh_collision(a, b)

    def test_distant_meshes_do_not_collide(self):
        a = icosahedron()
        b = transform_mesh(icosahedron(), offset=(10.0, 0.0, 0.0))
        assert not mesh_collision(a, b)

    def test_nested_hollow_meshes_do_not_collide(self):
        """Surface meshes only collide when faces cross: a small hull
        strictly inside a big one has no face intersections."""
        outer = icosahedron(radius=2.0)
        inner = icosahedron(radius=0.3)
        assert not mesh_collision(outer, inner)

    def test_validations(self):
        with pytest.raises(ConfigurationError):
            icosahedron(radius=0.0)
        with pytest.raises(ConfigurationError):
            transform_mesh(np.ones((2, 4, 3)))
        with pytest.raises(ConfigurationError):
            transform_mesh(icosahedron(), scale=0.0)
        with pytest.raises(ConfigurationError):
            mesh_collision(np.ones((2, 3, 3)), np.ones((5, 9)))


class TestGenerator:
    def test_table1_size(self, rng):
        assert generate_triangle_pairs(rng, 10000).shape == (10000, 18)

    def test_balanced_classes(self, rng):
        pairs = generate_triangle_pairs(rng, 3000)
        rate = triangles_intersect(pairs).mean()
        assert 0.15 < rate < 0.85  # usable class balance for NN training


class TestApplication:
    def test_table1_row(self):
        app = make_application()
        assert str(app.rumba_topology) == "18->32->2->2"
        assert str(app.npu_topology) == "18->32->8->2"
        assert app.metric_name == "# of mismatches"
