"""Unit and property tests for the fft benchmark."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.fft import (
    fft_transform,
    generate_fractions,
    make_application,
    twiddle_kernel,
)
from repro.errors import ConfigurationError


class TestTwiddleKernel:
    def test_unit_magnitude(self, rng):
        x = rng.random((100, 1)) * 0.5
        tw = twiddle_kernel(x)
        np.testing.assert_allclose(np.hypot(tw[:, 0], tw[:, 1]), 1.0)

    def test_known_values(self):
        tw = twiddle_kernel(np.array([[0.0], [0.25], [0.5]]))
        np.testing.assert_allclose(tw[0], [1.0, 0.0], atol=1e-12)
        np.testing.assert_allclose(tw[1], [0.0, -1.0], atol=1e-12)
        np.testing.assert_allclose(tw[2], [-1.0, 0.0], atol=1e-12)

    def test_wrong_width(self):
        with pytest.raises(ConfigurationError):
            twiddle_kernel(np.ones((3, 2)))


class TestFftTransform:
    def test_matches_numpy_fft(self, rng):
        signal = rng.normal(size=64)
        np.testing.assert_allclose(
            fft_transform(signal), np.fft.fft(signal), atol=1e-9
        )

    def test_complex_signal(self, rng):
        signal = rng.normal(size=32) + 1j * rng.normal(size=32)
        np.testing.assert_allclose(
            fft_transform(signal), np.fft.fft(signal), atol=1e-9
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 8))
    def test_matches_numpy_all_power_of_two_sizes(self, log_n):
        rng = np.random.default_rng(log_n)
        signal = rng.normal(size=2**log_n)
        np.testing.assert_allclose(
            fft_transform(signal), np.fft.fft(signal), atol=1e-8
        )

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError, match="power of two"):
            fft_transform(np.ones(12))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            fft_transform(np.empty(0))

    def test_parseval_property(self, rng):
        """Energy is conserved: sum |x|^2 == sum |X|^2 / N."""
        signal = rng.normal(size=128)
        spectrum = fft_transform(signal)
        assert np.sum(np.abs(signal) ** 2) == pytest.approx(
            np.sum(np.abs(spectrum) ** 2) / 128
        )

    def test_approximate_twiddles_change_spectrum(self, rng, fft_backend):
        signal = rng.normal(size=256)
        exact = fft_transform(signal)
        approx = fft_transform(signal, twiddle_fn=fft_backend)
        # Approximate twiddles produce a nearby but different spectrum.
        rel = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
        assert 0.0 < rel < 1.0


class TestGenerator:
    def test_range_is_dit_twiddle_range(self, rng):
        x = generate_fractions(rng, 5000)
        assert x.shape == (5000, 1)
        assert x.min() >= 0.0 and x.max() < 0.5


class TestApplication:
    def test_table1_row(self):
        app = make_application()
        assert str(app.rumba_topology) == "1->1->2"
        assert str(app.npu_topology) == "1->4->4->2"
        assert app.domain == "Signal Processing"
