"""Tests for the JPEG entropy-coding stage (zig-zag, RLE, Huffman)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.datasets import natural_image
from repro.apps.jpeg import compress_image
from repro.apps.jpeg_entropy import (
    HuffmanCode,
    decode_image,
    encode_image,
    inverse_zigzag,
    run_length_decode,
    run_length_encode,
    zigzag_indices,
    zigzag_scan,
)
from repro.errors import ConfigurationError


class TestZigzag:
    def test_standard_prefix(self):
        # The JPEG zig-zag starts 0, 1, 8, 16, 9, 2, 3, 10 ...
        assert zigzag_indices(8)[:8].tolist() == [0, 1, 8, 16, 9, 2, 3, 10]

    def test_is_permutation(self):
        idx = zigzag_indices(8)
        assert sorted(idx.tolist()) == list(range(64))

    def test_roundtrip(self, rng):
        blocks = rng.integers(-50, 50, size=(10, 64)).astype(float)
        np.testing.assert_array_equal(
            inverse_zigzag(zigzag_scan(blocks)), blocks
        )

    def test_low_frequencies_first(self):
        # A block with only the DC coefficient set scans to position 0.
        block = np.zeros((1, 64))
        block[0, 0] = 7.0
        assert zigzag_scan(block)[0, 0] == 7.0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            zigzag_indices(0)
        with pytest.raises(ConfigurationError):
            zigzag_scan(np.zeros((2, 63)))


class TestRunLength:
    def test_trailing_zeros_become_eob(self):
        symbols = run_length_encode([5, 0, 0, 0])
        assert symbols == [("V", 5), ("E", 0)]

    def test_interior_zero_run(self):
        symbols = run_length_encode([1, 0, 0, 3])
        assert symbols == [("V", 1), ("Z", 2), ("V", 3)]

    def test_all_zero_block(self):
        assert run_length_encode([0, 0, 0]) == [("E", 0)]

    def test_no_eob_when_ending_nonzero(self):
        assert run_length_encode([0, 2]) == [("Z", 1), ("V", 2)]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-30, 30), min_size=1, max_size=64))
    def test_roundtrip_property(self, values):
        symbols = run_length_encode(values)
        decoded = run_length_decode(symbols, length=len(values))
        assert decoded == values

    def test_decode_validations(self):
        with pytest.raises(ConfigurationError):
            run_length_decode([("Z", 0)], length=4)
        with pytest.raises(ConfigurationError):
            run_length_decode([("?", 1)], length=4)
        with pytest.raises(ConfigurationError):
            run_length_decode([("V", 1)], length=4)  # too short


class TestHuffman:
    def test_roundtrip(self):
        freqs = {"a": 50, "b": 20, "c": 10, "d": 1}
        code = HuffmanCode.from_frequencies(freqs)
        message = ["a", "b", "a", "c", "d", "a"]
        payload, n_bits = code.encode(message)
        assert code.decode(payload, n_bits) == message

    def test_frequent_symbols_get_short_codes(self):
        freqs = {"common": 1000, "rare": 1}
        code = HuffmanCode.from_frequencies(freqs)
        assert code.lengths["common"] <= code.lengths["rare"]

    def test_single_symbol_alphabet(self):
        code = HuffmanCode.from_frequencies({"x": 5})
        payload, n_bits = code.encode(["x", "x", "x"])
        assert code.decode(payload, n_bits) == ["x", "x", "x"]

    def test_prefix_free(self):
        freqs = {s: f for s, f in zip("abcdefg", [50, 30, 20, 10, 5, 2, 1])}
        code = HuffmanCode.from_frequencies(freqs)
        codewords = [
            format(c, f"0{l}b") for c, l in code.codes.values()
        ]
        for a in codewords:
            for b in codewords:
                if a != b:
                    assert not b.startswith(a)

    def test_kraft_inequality(self):
        freqs = {i: 2**i for i in range(10)}
        code = HuffmanCode.from_frequencies(freqs)
        kraft = sum(2.0 ** -l for l in code.lengths.values())
        assert kraft <= 1.0 + 1e-12

    def test_unknown_symbol_rejected(self):
        code = HuffmanCode.from_frequencies({"a": 1, "b": 1})
        with pytest.raises(ConfigurationError):
            code.encode(["z"])

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ConfigurationError):
            HuffmanCode.from_frequencies({})


class TestWholeImageCodec:
    def test_decode_matches_kernel_pipeline(self):
        """The entropy stage is lossless: decoding reproduces exactly the
        DCT/quantize kernel's reconstruction."""
        image = natural_image((64, 64), seed=5)
        bitstream = encode_image(image)
        decoded = decode_image(bitstream)
        np.testing.assert_allclose(decoded, compress_image(image), atol=1e-9)

    def test_compresses_natural_images(self):
        image = natural_image((128, 128), seed=6, detail=0.4)
        bitstream = encode_image(image)
        assert bitstream.compression_ratio > 2.0

    def test_coarser_quantization_compresses_harder(self):
        image = natural_image((64, 64), seed=7)
        fine = encode_image(image, quality_scale=1.0)
        coarse = encode_image(image, quality_scale=4.0)
        assert coarse.compressed_bytes < fine.compressed_bytes

    def test_odd_image_cropped(self):
        image = natural_image((67, 70), seed=8)
        decoded = decode_image(encode_image(image))
        assert decoded.shape == (64, 64)

    def test_invalid_quality(self):
        with pytest.raises(ConfigurationError):
            encode_image(natural_image((16, 16), seed=1), quality_scale=0.0)
