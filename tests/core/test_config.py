"""Unit tests for RumbaConfig."""

import pytest

from repro.core.config import RumbaConfig, TunerMode
from repro.errors import ConfigurationError


class TestRumbaConfig:
    def test_defaults_match_paper(self):
        config = RumbaConfig()
        assert config.scheme == "treeErrors"
        assert config.mode == TunerMode.TOQ
        assert config.target_output_quality == 0.90
        assert config.detector_placement == 2  # the paper's choice

    def test_target_output_error(self):
        config = RumbaConfig(target_output_quality=0.95)
        assert config.target_output_error == pytest.approx(0.05)

    def test_quality_bounds(self):
        with pytest.raises(ConfigurationError):
            RumbaConfig(target_output_quality=0.0)
        with pytest.raises(ConfigurationError):
            RumbaConfig(target_output_quality=1.5)

    def test_budget_bounds(self):
        with pytest.raises(ConfigurationError):
            RumbaConfig(iteration_budget_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            RumbaConfig(iteration_budget_fraction=1.1)

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            RumbaConfig(initial_threshold=-1.0)
        with pytest.raises(ConfigurationError):
            RumbaConfig(threshold_gain=1.0)

    def test_placement_validation(self):
        with pytest.raises(ConfigurationError):
            RumbaConfig(detector_placement=3)
        assert RumbaConfig(detector_placement=1).detector_placement == 1

    def test_queue_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            RumbaConfig(recovery_queue_capacity=0)

    def test_modes_enumerated(self):
        assert {m.value for m in TunerMode} == {"toq", "energy", "quality"}
