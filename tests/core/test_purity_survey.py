"""Unit tests for the Sec. 2.2 purity survey."""

import numpy as np
import pytest

from repro.core.purity_survey import (
    PATTERN_CATALOG,
    KernelPattern,
    survey_purity,
)
from repro.errors import ConfigurationError


class TestSurvey:
    def test_classification_matches_expectations(self):
        survey = survey_purity()
        for pattern, report in zip(survey.patterns, survey.reports):
            assert report.is_pure == pattern.expected_pure, pattern.name

    def test_paper_fraction(self):
        """The catalog reproduces the >=70% re-executable finding."""
        survey = survey_purity()
        assert survey.pure_fraction >= 0.70

    def test_map_and_stencil_all_pure(self):
        survey = survey_purity()
        for pattern, report in zip(survey.patterns, survey.reports):
            if pattern.category in ("map", "stencil"):
                assert report.is_pure, pattern.name

    def test_irregular_patterns_impure(self):
        survey = survey_purity()
        impure = [
            p.name for p, r in zip(survey.patterns, survey.reports)
            if not r.is_pure
        ]
        assert "irregular: histogram accumulate" in impure
        assert "irregular: in-place relaxation" in impure
        assert "scan: running prefix" in impure

    def test_rows_layout(self):
        survey = survey_purity()
        rows = survey.rows()
        assert len(rows) == len(PATTERN_CATALOG)
        assert all(len(row) == 3 for row in rows)

    def test_custom_patterns(self):
        pattern = KernelPattern(
            "test: negate", "map", 2, lambda x: -x, True
        )
        survey = survey_purity([pattern])
        assert survey.pure_fraction == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            survey_purity([])

    def test_survey_is_repeatable(self):
        """Impure stateful kernels are rebuilt per survey, so repeated
        surveys agree."""
        a = survey_purity(seed=1)
        b = survey_purity(seed=1)
        assert [r.is_pure for r in a.reports] == [r.is_pure for r in b.reports]
