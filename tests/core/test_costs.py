"""Unit tests for whole-application cost accounting (Figs. 14-16)."""

import numpy as np
import pytest

from repro.apps import get_application
from repro.core.costs import CostModel, OffloadOverhead
from repro.errors import ConfigurationError
from repro.hardware.checker_hw import CheckerModel
from repro.hardware.energy import InstructionMix


@pytest.fixture(scope="module")
def sobel_cost_model():
    return CostModel(get_application("sobel"))


class TestCostModel:
    def test_unchecked_npu_saves_energy(self, sobel_cost_model):
        app = sobel_cost_model.app
        costs = sobel_cost_model.whole_app_costs(
            app.npu_topology, CheckerModel("none"), fix_fraction=0.0
        )
        assert costs.energy_savings > 1.5
        assert costs.speedup > 1.5

    def test_fixing_costs_energy(self, sobel_cost_model):
        app = sobel_cost_model.app
        checker = CheckerModel("tree", n_inputs=9)
        none = sobel_cost_model.whole_app_costs(app.rumba_topology, checker, 0.0)
        some = sobel_cost_model.whole_app_costs(app.rumba_topology, checker, 0.3)
        assert some.scheme_energy_pj > none.scheme_energy_pj
        assert some.energy_savings < none.energy_savings

    def test_small_fix_fraction_keeps_speedup(self, sobel_cost_model):
        """Recovery overlaps the accelerator: modest fixing is latency-free."""
        app = sobel_cost_model.app
        checker = CheckerModel("tree", n_inputs=9)
        none = sobel_cost_model.whole_app_costs(app.rumba_topology, checker, 0.0)
        keepup = sobel_cost_model.accelerator_speedup(app.rumba_topology)
        modest = 0.5 / keepup
        some = sobel_cost_model.whole_app_costs(
            app.rumba_topology, checker, modest
        )
        assert some.speedup == pytest.approx(none.speedup, rel=1e-9)

    def test_heavy_fixing_limits_speedup(self, sobel_cost_model):
        app = sobel_cost_model.app
        checker = CheckerModel("tree", n_inputs=9)
        light = sobel_cost_model.whole_app_costs(app.rumba_topology, checker, 0.0)
        heavy = sobel_cost_model.whole_app_costs(app.rumba_topology, checker, 1.0)
        assert heavy.speedup < light.speedup

    def test_full_fixing_never_beats_baseline_kernel(self, sobel_cost_model):
        """Fixing 100% re-runs everything on the CPU: no kernel speedup."""
        app = sobel_cost_model.app
        costs = sobel_cost_model.whole_app_costs(
            app.rumba_topology, CheckerModel("none"), 1.0
        )
        assert costs.speedup <= 1.05

    def test_fix_fraction_validated(self, sobel_cost_model):
        app = sobel_cost_model.app
        with pytest.raises(ConfigurationError):
            sobel_cost_model.whole_app_costs(
                app.rumba_topology, CheckerModel("none"), 1.5
            )

    def test_normalized_energy_is_inverse_savings(self, sobel_cost_model):
        app = sobel_cost_model.app
        costs = sobel_cost_model.whole_app_costs(
            app.npu_topology, CheckerModel("none"), 0.0
        )
        assert costs.normalized_energy == pytest.approx(1.0 / costs.energy_savings)

    def test_kmeans_offload_barely_pays(self):
        """The paper's kmeans observation: tiny kernel, no real gains."""
        cost_model = CostModel(get_application("kmeans"))
        app = cost_model.app
        costs = cost_model.whole_app_costs(
            app.npu_topology, CheckerModel("none"), 0.0
        )
        assert costs.speedup < 1.1
        assert costs.energy_savings < 1.6

    def test_overhead_charged(self):
        app = get_application("sobel")
        cheap = CostModel(
            app, overhead=OffloadOverhead(InstructionMix(), overlapped_cycles=0.0)
        )
        expensive = CostModel(
            app,
            overhead=OffloadOverhead(
                InstructionMix(int_ops=100), overlapped_cycles=5.0
            ),
        )
        c1 = cheap.whole_app_costs(app.rumba_topology, CheckerModel("none"), 0.0)
        c2 = expensive.whole_app_costs(app.rumba_topology, CheckerModel("none"), 0.0)
        assert c2.scheme_energy_pj > c1.scheme_energy_pj
        assert c2.scheme_cycles > c1.scheme_cycles

    def test_baseline_independent_of_scheme(self, sobel_cost_model):
        app = sobel_cost_model.app
        a = sobel_cost_model.whole_app_costs(app.rumba_topology,
                                             CheckerModel("none"), 0.0)
        b = sobel_cost_model.whole_app_costs(app.npu_topology,
                                             CheckerModel("tree"), 0.5)
        assert a.baseline_energy_pj == b.baseline_energy_pj
        assert a.baseline_cycles == b.baseline_cycles
