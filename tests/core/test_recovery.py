"""Unit and property tests for recovery, the output merger and purity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recovery import (
    RecoveryModule,
    merge_outputs,
    verify_purity,
)
from repro.errors import ConfigurationError, PurityError


def double_kernel(x):
    return np.asarray(x) * 2.0


class TestMergeOutputs:
    def test_exact_rows_replace_approx(self):
        approx = np.zeros((4, 2))
        exact = np.array([[1.0, 1.0], [2.0, 2.0]])
        merged = merge_outputs(approx, exact, np.array([1, 3]))
        np.testing.assert_array_equal(merged[0], [0.0, 0.0])
        np.testing.assert_array_equal(merged[1], [1.0, 1.0])
        np.testing.assert_array_equal(merged[3], [2.0, 2.0])

    def test_original_untouched(self):
        approx = np.zeros((3, 1))
        merged = merge_outputs(approx, np.ones((1, 1)), np.array([0]))
        assert approx[0, 0] == 0.0
        assert merged[0, 0] == 1.0

    def test_empty_recovery_set(self):
        approx = np.ones((3, 1))
        merged = merge_outputs(approx, np.empty((0, 1)), np.empty(0, dtype=int))
        np.testing.assert_array_equal(merged, approx)

    def test_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            merge_outputs(np.ones((3, 1)), np.ones((2, 1)), np.array([0]))

    def test_index_out_of_range(self):
        with pytest.raises(ConfigurationError):
            merge_outputs(np.ones((3, 1)), np.ones((1, 1)), np.array([5]))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=50))
    def test_merge_equals_where_property(self, bits):
        bits = np.asarray(bits)
        n = bits.shape[0]
        approx = np.zeros((n, 1))
        indices = np.flatnonzero(bits)
        exact = np.ones((indices.size, 1))
        merged = merge_outputs(approx, exact, indices)
        np.testing.assert_array_equal(merged[:, 0], bits.astype(float))


class TestRecoveryModule:
    def test_recovers_flagged_iterations(self):
        module = RecoveryModule(double_kernel)
        inputs = np.array([[1.0], [2.0], [3.0]])
        approx = np.array([[9.0], [9.0], [9.0]])
        bits = np.array([True, False, True])
        result = module.recover(inputs, approx, bits)
        np.testing.assert_array_equal(result.merged_outputs[:, 0], [2.0, 9.0, 6.0])
        assert result.n_recovered == 2
        assert result.recovered_fraction == pytest.approx(2 / 3)

    def test_no_flags_returns_approx_uncopied(self):
        module = RecoveryModule(double_kernel)
        inputs = np.array([[1.0]])
        approx = np.array([[5.0]])
        result = module.recover(inputs, approx, np.array([False]))
        assert result.n_recovered == 0
        np.testing.assert_array_equal(result.merged_outputs, approx)
        # Zero-copy contract: a clean batch hands back the approximate
        # outputs themselves (outputs are immutable downstream).
        assert result.merged_outputs is approx

    def test_bit_count_must_match(self):
        module = RecoveryModule(double_kernel)
        with pytest.raises(ConfigurationError):
            module.recover(np.ones((3, 1)), np.ones((3, 1)), np.array([True]))

    def test_total_recoveries_accumulates(self):
        module = RecoveryModule(double_kernel)
        inputs = np.ones((4, 1))
        approx = np.ones((4, 1))
        module.recover(inputs, approx, np.array([True, True, False, False]))
        module.recover(inputs, approx, np.array([True, False, False, False]))
        assert module.total_recoveries == 3

    def test_impure_kernel_rejected(self):
        state = {"calls": 0}

        def impure(x):
            state["calls"] += 1
            return np.asarray(x) + state["calls"]

        module = RecoveryModule(impure, verify=True)
        with pytest.raises(PurityError):
            module.recover(
                np.ones((2, 1)), np.ones((2, 1)), np.array([True, False])
            )

    def test_verification_can_be_disabled(self):
        state = {"calls": 0}

        def impure(x):
            state["calls"] += 1
            return np.asarray(x) + state["calls"]

        module = RecoveryModule(impure, verify=False)
        result = module.recover(
            np.ones((2, 1)), np.ones((2, 1)), np.array([True, False])
        )
        assert result.n_recovered == 1


class TestVerifyPurity:
    def test_pure_kernel_passes(self):
        report = verify_purity(double_kernel, np.ones((4, 1)))
        assert report.is_pure
        assert report.deterministic and report.preserves_inputs

    def test_nondeterministic_detected(self):
        rng = np.random.default_rng(0)

        def noisy(x):
            return np.asarray(x) + rng.normal(size=np.asarray(x).shape)

        report = verify_purity(noisy, np.ones((4, 1)), raise_on_failure=False)
        assert not report.deterministic
        with pytest.raises(PurityError, match="different outputs"):
            verify_purity(noisy, np.ones((4, 1)))

    def test_input_mutation_detected(self):
        def mutating(x):
            x += 1.0
            return x * 2.0

        report = verify_purity(mutating, np.ones((4, 1)), raise_on_failure=False)
        assert not report.preserves_inputs
        with pytest.raises(PurityError, match="mutated"):
            verify_purity(mutating, np.ones((4, 1)))
