"""Tests for the streaming wrapper and drift detection."""

import numpy as np
import pytest

from repro.apps.fft import generate_fractions
from repro.core import prepare_system
from repro.core.stream import DriftDetector, QualityManagedStream
from repro.errors import ConfigurationError


class TestDriftDetector:
    def test_no_flag_during_calibration(self):
        detector = DriftDetector(calibration_invocations=5)
        for _ in range(4):
            assert not detector.observe(0.2)
        assert not detector.is_calibrated or detector.reference_mean is None

    def test_calibrates_then_accepts_stable_rates(self):
        detector = DriftDetector(calibration_invocations=5, min_band=0.05)
        for _ in range(5):
            detector.observe(0.2)
        assert detector.is_calibrated
        for _ in range(10):
            assert not detector.observe(0.22)

    def test_flags_large_shift(self):
        detector = DriftDetector(calibration_invocations=5, min_band=0.05,
                                 smoothing=0.5)
        for _ in range(5):
            detector.observe(0.1)
        flagged = any(detector.observe(0.8) for _ in range(10))
        assert flagged

    def test_reset_recalibrates(self):
        detector = DriftDetector(calibration_invocations=3)
        for _ in range(3):
            detector.observe(0.1)
        detector.reset()
        assert not detector.is_calibrated
        assert not detector.observe(0.9)  # back in calibration

    def test_smoothing_damps_single_spikes(self):
        detector = DriftDetector(calibration_invocations=5, min_band=0.1,
                                 smoothing=0.1)
        for _ in range(5):
            detector.observe(0.2)
        assert not detector.observe(0.9)  # one outlier is absorbed

    def test_validations(self):
        with pytest.raises(ConfigurationError):
            DriftDetector(calibration_invocations=1)
        with pytest.raises(ConfigurationError):
            DriftDetector(tolerance_sigmas=0)
        with pytest.raises(ConfigurationError):
            DriftDetector(smoothing=0.0)
        detector = DriftDetector()
        with pytest.raises(ConfigurationError):
            detector.observe(1.5)


class TestDriftDetectorEdges:
    """Boundary configurations the serving layer exercises."""

    def test_minimum_calibration_window_of_two(self):
        detector = DriftDetector(
            calibration_invocations=2, tolerance_sigmas=1.0,
            min_band=0.01, max_band=0.05, smoothing=1.0,
        )
        assert not detector.observe(0.10)
        assert not detector.is_calibrated
        assert not detector.observe(0.12)
        assert detector.is_calibrated
        assert detector.reference_mean == pytest.approx(0.11)
        # Below 2 the spread is undefined; the constructor refuses it.
        with pytest.raises(ConfigurationError):
            DriftDetector(calibration_invocations=1)

    def test_band_clamped_to_min_band(self):
        # Identical calibration rates give zero spread; the band must
        # clamp up to min_band instead of flagging on any wiggle.
        detector = DriftDetector(
            calibration_invocations=3, tolerance_sigmas=4.0,
            min_band=0.05, max_band=0.25,
        )
        for _ in range(3):
            detector.observe(0.2)
        assert detector.reference_band == pytest.approx(0.05)
        assert not detector.observe(0.22)  # inside the clamped band

    def test_band_clamped_to_max_band(self):
        # Wildly noisy calibration would produce a band so wide nothing
        # ever flags; max_band caps it.
        detector = DriftDetector(
            calibration_invocations=4, tolerance_sigmas=10.0,
            min_band=0.05, max_band=0.10,
        )
        for rate in (0.0, 1.0, 0.0, 1.0):
            detector.observe(rate)
        assert detector.reference_band == pytest.approx(0.10)
        # Mean is 0.5; a sustained rate beyond mean+max_band flags even
        # though the raw sigma band would have swallowed it.
        flagged = False
        for _ in range(20):
            flagged = detector.observe(0.95) or flagged
        assert flagged

    def test_smoothing_of_one_tracks_instantaneously(self):
        # smoothing=1.0 is the no-memory boundary: the smoothed rate IS
        # the last observation, so one spike outside the band flags and
        # one return inside the band clears.
        detector = DriftDetector(
            calibration_invocations=2, tolerance_sigmas=1.0,
            min_band=0.05, max_band=0.10, smoothing=1.0,
        )
        detector.observe(0.2)
        detector.observe(0.2)
        assert detector.observe(0.9)
        assert not detector.observe(0.2)

    def test_smoothing_above_one_rejected(self):
        with pytest.raises(ConfigurationError):
            DriftDetector(smoothing=1.2)
        with pytest.raises(ConfigurationError):
            DriftDetector(smoothing=0.0)


class TestQualityManagedStream:
    @pytest.fixture(scope="class")
    def system(self):
        return prepare_system("fft", scheme="treeErrors", seed=0)

    def test_stable_stream_never_flags(self, system):
        system.records.clear()
        stream = QualityManagedStream(
            system, DriftDetector(calibration_invocations=4, min_band=0.08)
        )
        rng = np.random.default_rng(5)
        for _ in range(12):
            stream.feed(generate_fractions(rng, 400))
        assert not stream.needs_retraining
        status = stream.status()
        assert status.n_invocations == 12
        assert not status.drifted

    def test_input_drift_flags_retraining(self, system):
        """Shift the input population outside the training range: the
        checker's fire rate moves and the stream demands retraining."""
        system.records.clear()
        stream = QualityManagedStream(
            system,
            DriftDetector(calibration_invocations=4, min_band=0.08,
                          smoothing=0.5),
        )
        rng = np.random.default_rng(6)
        for _ in range(6):
            stream.feed(generate_fractions(rng, 400))
        # Drift: fractions concentrate where the accelerator is accurate,
        # collapsing the fire rate far below the calibrated band.
        for _ in range(10):
            drifted_inputs = 0.02 * rng.random(400).reshape(-1, 1)
            stream.feed(drifted_inputs)
        assert stream.needs_retraining

    def test_acknowledge_clears_flag(self, system):
        system.records.clear()
        stream = QualityManagedStream(
            system, DriftDetector(calibration_invocations=2, min_band=0.01,
                                  smoothing=1.0)
        )
        rng = np.random.default_rng(7)
        stream.feed(generate_fractions(rng, 300))
        stream.feed(generate_fractions(rng, 300))
        stream.drift_flagged_at.append(3)  # simulate a flag
        assert stream.needs_retraining
        stream.acknowledge_retraining()
        assert not stream.needs_retraining
        assert not stream.drift.is_calibrated

    def test_status_requires_traffic(self, system):
        stream = QualityManagedStream(system)
        with pytest.raises(ConfigurationError):
            stream.status()

    def test_window_validated(self, system):
        with pytest.raises(ConfigurationError):
            QualityManagedStream(system, window=0)
