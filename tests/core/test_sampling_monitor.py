"""Unit tests for the Green/SAGE-style quality-sampling baseline."""

import numpy as np
import pytest

from repro.core.sampling_monitor import QualitySamplingMonitor
from repro.errors import ConfigurationError


class TestQualitySamplingMonitor:
    def test_checks_every_nth(self):
        monitor = QualitySamplingMonitor(check_every_n=3, target_error=0.1)
        report = monitor.process_stream(np.zeros(9))
        np.testing.assert_array_equal(
            np.flatnonzero(report.checked), [0, 3, 6]
        )
        assert report.n_checked == 3

    def test_phase_shifts_the_checks(self):
        monitor = QualitySamplingMonitor(check_every_n=4, target_error=0.1,
                                         phase=2)
        report = monitor.process_stream(np.zeros(8))
        np.testing.assert_array_equal(np.flatnonzero(report.checked), [2, 6])

    def test_recovers_only_checked_bad_invocations(self):
        errors = np.array([0.5, 0.5, 0.0, 0.5])
        monitor = QualitySamplingMonitor(check_every_n=2, target_error=0.1)
        report = monitor.process_stream(errors)
        # Invocations 0 and 2 are checked; only 0 is bad and recovered.
        assert report.errors_after[0] == 0.0
        assert report.errors_after[1] == 0.5   # bad but unchecked: missed
        assert report.errors_after[3] == 0.5
        assert report.n_recovered == 1
        assert report.n_missed_bad == 2

    def test_miss_rate_approaches_1_minus_1_over_n(self):
        """Challenge II quantified: with uniformly spread bad invocations,
        sampling every Nth misses ~(N-1)/N of them."""
        rng = np.random.default_rng(0)
        errors = (rng.random(1000) < 0.2) * 0.5  # 20% bad, anywhere
        monitor = QualitySamplingMonitor(check_every_n=10, target_error=0.1)
        report = monitor.process_stream(errors)
        assert report.miss_rate == pytest.approx(0.9, abs=0.05)

    def test_check_every_1_misses_nothing(self):
        errors = np.array([0.5, 0.0, 0.9])
        monitor = QualitySamplingMonitor(check_every_n=1, target_error=0.1)
        report = monitor.process_stream(errors)
        assert report.n_missed_bad == 0
        assert report.max_error_after == 0.0
        assert report.exact_reexecution_fraction == 1.0

    def test_no_bad_invocations(self):
        monitor = QualitySamplingMonitor(check_every_n=5, target_error=0.1)
        report = monitor.process_stream(np.full(20, 0.01))
        assert report.n_recovered == 0
        assert report.miss_rate == 0.0

    def test_validations(self):
        with pytest.raises(ConfigurationError):
            QualitySamplingMonitor(check_every_n=0, target_error=0.1)
        with pytest.raises(ConfigurationError):
            QualitySamplingMonitor(check_every_n=2, target_error=-0.1)
        monitor = QualitySamplingMonitor(check_every_n=2, target_error=0.1)
        with pytest.raises(ConfigurationError):
            monitor.process_stream([])
        with pytest.raises(ConfigurationError):
            monitor.process_stream([-0.5])
