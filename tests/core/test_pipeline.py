"""Unit and property tests for the pipelined overlap model (Fig. 8 / 18)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import (
    max_keepup_fix_fraction,
    simulate_pipeline,
)
from repro.errors import ConfigurationError


class TestSimulatePipeline:
    def test_no_recovery_pure_accelerator(self):
        result = simulate_pipeline(np.zeros(10, dtype=bool), 5.0, 20.0)
        assert result.makespan == pytest.approx(50.0)
        assert result.cpu_busy == 0.0
        assert result.cpu_kept_up
        assert result.n_recovered == 0

    def test_fig8_example_overlap(self):
        """Fig. 8: checks fire for iterations 0, 2, 5 and 6; with a 2x-fast
        accelerator the CPU keeps up."""
        bits = np.array([1, 0, 1, 0, 0, 1, 1, 0], dtype=bool)
        result = simulate_pipeline(bits, accel_cycles_per_iteration=1.0,
                                   cpu_cycles_per_iteration=2.0)
        assert result.n_recovered == 4
        # Iterations 5 and 6 are adjacent (not uniformly spread), so the
        # tail drains just after the accelerator -- still "keeping up".
        assert result.cpu_kept_up
        assert result.makespan <= result.accel_finish + 2 * 2.0

    def test_cpu_falls_behind_when_overloaded(self):
        bits = np.ones(10, dtype=bool)  # fix everything
        result = simulate_pipeline(bits, 1.0, 5.0)
        assert not result.cpu_kept_up
        assert result.makespan > result.accel_finish
        assert result.slowdown_vs_accelerator > 1.0

    def test_half_fixes_at_2x_keeps_up(self):
        """Sec. 3.3: at a 2x accelerator gain the CPU sustains 50% fixes."""
        bits = np.zeros(100, dtype=bool)
        bits[::2] = True
        result = simulate_pipeline(bits, 1.0, 2.0)
        assert result.cpu_kept_up

    def test_recovery_bits_served_fifo(self):
        bits = np.array([True, True, False, True], dtype=bool)
        result = simulate_pipeline(bits, 1.0, 10.0)
        served = [seg[2] for seg in result.cpu_segments]
        assert served == [0, 1, 3]
        starts = [seg[0] for seg in result.cpu_segments]
        assert starts == sorted(starts)

    def test_cpu_cannot_start_before_verdict(self):
        bits = np.array([False, False, True], dtype=bool)
        result = simulate_pipeline(bits, 4.0, 1.0, detector_placement=2)
        start = result.cpu_segments[0][0]
        assert start >= 3 * 4.0  # verdict arrives when accel finishes iter 2

    def test_placement1_verdicts_early_but_slower_stream(self):
        bits = np.array([True, False], dtype=bool)
        par = simulate_pipeline(bits, 4.0, 1.0, detector_placement=2,
                                checker_cycles=1.0)
        pre = simulate_pipeline(bits, 4.0, 1.0, detector_placement=1,
                                checker_cycles=1.0)
        # Config 1 serializes the checker: accelerator stream is longer.
        assert pre.accel_finish > par.accel_finish
        # But its first verdict (and recovery start) comes earlier.
        assert pre.cpu_segments[0][0] < par.cpu_segments[0][0]

    def test_empty_invocation(self):
        result = simulate_pipeline(np.zeros(0, dtype=bool), 1.0, 1.0)
        assert result.makespan == 0.0

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            simulate_pipeline(np.zeros(3, dtype=bool), 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            simulate_pipeline(np.zeros(3, dtype=bool), 1.0, -1.0)
        with pytest.raises(ConfigurationError):
            simulate_pipeline(np.zeros(3, dtype=bool), 1.0, 1.0,
                              detector_placement=0)

    def test_activity_trace_covers_busy_time(self):
        bits = np.array([True, False, False, True], dtype=bool)
        result = simulate_pipeline(bits, 2.0, 3.0)
        trace = result.activity_trace(resolution=1)
        # Total busy samples roughly match cpu_busy cycles.
        assert trace.sum() >= int(result.cpu_busy) - 2
        assert set(np.unique(trace)) <= {0, 1}

    def test_activity_trace_resolution_validated(self):
        result = simulate_pipeline(np.zeros(2, dtype=bool), 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            result.activity_trace(resolution=0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.booleans(), min_size=1, max_size=60),
        st.floats(0.5, 10.0),
        st.floats(0.5, 50.0),
    )
    def test_invariants_property(self, bits, accel, cpu):
        bits = np.asarray(bits)
        result = simulate_pipeline(bits, accel, cpu)
        assert result.makespan >= result.accel_finish - 1e-9
        assert result.cpu_busy == pytest.approx(bits.sum() * cpu)
        assert result.n_recovered == int(bits.sum())
        # Segments never overlap (single CPU).
        ends = [0.0] + [seg[1] for seg in result.cpu_segments[:-1]]
        for (start, _, _), prev_end in zip(result.cpu_segments, ends):
            assert start >= prev_end - 1e-9


class TestKeepupFraction:
    def test_matches_inverse_speedup(self):
        assert max_keepup_fix_fraction(1.0, 2.0) == pytest.approx(0.5)
        assert max_keepup_fix_fraction(1.0, 6.67) == pytest.approx(1 / 6.67)

    def test_capped_at_one(self):
        assert max_keepup_fix_fraction(10.0, 1.0) == 1.0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            max_keepup_fix_fraction(0.0, 1.0)

    def test_keepup_fraction_is_tight(self):
        """Fixing exactly the keep-up fraction (uniformly) never extends
        the makespan; fixing a bit more does."""
        accel, cpu = 1.0, 4.0
        n = 400
        frac = max_keepup_fix_fraction(accel, cpu)
        stride = int(1 / frac)
        bits = np.zeros(n, dtype=bool)
        bits[::stride] = True
        assert simulate_pipeline(bits, accel, cpu).slowdown_vs_accelerator < 1.02
        bits_over = np.zeros(n, dtype=bool)
        bits_over[:: max(stride - 1, 1)] = True
        assert simulate_pipeline(
            bits_over, accel, cpu
        ).slowdown_vs_accelerator > 1.02
