"""Unit tests for detector placement (Sec. 3.5, Fig. 9)."""

import pytest

from repro.core.placement import evaluate_placement
from repro.errors import ConfigurationError
from repro.hardware.checker_hw import CheckerModel
from repro.hardware.npu import NPUModel
from repro.nn.mlp import Topology

TOPO = Topology.parse("9->8->1")


def _costs(configuration, fire_fraction, kind="linear"):
    return evaluate_placement(
        configuration,
        NPUModel(),
        CheckerModel(kind, n_inputs=9),
        TOPO,
        fire_fraction,
    )


class TestPlacement:
    def test_config1_adds_latency(self):
        pre = _costs(1, 0.0)
        par = _costs(2, 0.0)
        assert pre.cycles_per_iteration > par.cycles_per_iteration

    def test_config2_hides_checker_latency(self):
        npu_cycles = NPUModel().invocation_cycles(TOPO)
        par = _costs(2, 0.5)
        assert par.cycles_per_iteration == pytest.approx(npu_cycles)

    def test_config1_saves_energy_on_fired_checks(self):
        no_fires = _costs(1, 0.0)
        half_fires = _costs(1, 0.5)
        assert half_fires.energy_pj_per_iteration < no_fires.energy_pj_per_iteration

    def test_config2_energy_independent_of_fires(self):
        assert _costs(2, 0.0).energy_pj_per_iteration == pytest.approx(
            _costs(2, 0.9).energy_pj_per_iteration
        )

    def test_crossover_exists(self):
        """At high fire rates Config 1 wins on energy; Config 2 always wins
        on latency — the Sec. 3.5 trade-off."""
        high_fire = 0.8
        pre = _costs(1, high_fire)
        par = _costs(2, high_fire)
        assert pre.energy_pj_per_iteration < par.energy_pj_per_iteration
        assert pre.cycles_per_iteration > par.cycles_per_iteration

    def test_paper_choice_is_config2(self):
        from repro.core.config import RumbaConfig

        assert RumbaConfig().detector_placement == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _costs(3, 0.0)
        with pytest.raises(ConfigurationError):
            _costs(1, 1.5)
