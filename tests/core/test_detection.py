"""Unit tests for the detection module."""

import numpy as np
import pytest

from repro.core.detection import DetectionModule
from repro.errors import ConfigurationError
from repro.hardware.queues import RecoveryQueue
from repro.predictors.oracle import OraclePredictor
from repro.predictors.linear import LinearErrorPredictor


def _oracle_module(threshold=0.5):
    return DetectionModule(OraclePredictor(), threshold=threshold)


class TestDetectionModule:
    def test_fires_above_threshold(self):
        module = _oracle_module(0.5)
        errors = np.array([0.1, 0.6, 0.4, 0.9])
        result = module.detect(true_errors=errors)
        np.testing.assert_array_equal(
            result.recovery_bits, [False, True, False, True]
        )
        assert result.n_fired == 2
        assert result.fire_fraction == pytest.approx(0.5)

    def test_threshold_is_strict_greater(self):
        module = _oracle_module(0.5)
        result = module.detect(true_errors=np.array([0.5]))
        assert result.n_fired == 0

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            DetectionModule(OraclePredictor(), threshold=-0.1)

    def test_pushes_recovery_bits_in_order(self):
        module = _oracle_module(0.5)
        queue = RecoveryQueue()
        module.detect(
            true_errors=np.array([0.9, 0.1, 0.8]),
            recovery_queue=queue,
            first_iteration_id=100,
        )
        assert queue.pop() == (100, True)
        assert queue.pop() == (101, False)
        assert queue.pop() == (102, True)

    def test_lifetime_statistics(self):
        module = _oracle_module(0.5)
        module.detect(true_errors=np.array([0.9, 0.1]))
        module.detect(true_errors=np.array([0.9, 0.9]))
        assert module.total_checks == 4
        assert module.total_fires == 3
        assert module.lifetime_fire_fraction == pytest.approx(0.75)

    def test_checker_kind_follows_predictor(self, rng):
        predictor = LinearErrorPredictor().fit(rng.random((20, 3)), rng.random(20))
        module = DetectionModule(predictor, threshold=0.1, n_inputs=3)
        assert module.checker.kind == "linear"
        assert module.checker.n_inputs == 3

    def test_oracle_has_free_checker(self):
        module = _oracle_module()
        assert module.check_energy_pj(1000) == 0.0
        assert module.check_cycles_per_element() == 0.0

    def test_linear_checker_energy_scales(self, rng):
        predictor = LinearErrorPredictor().fit(rng.random((20, 3)), rng.random(20))
        module = DetectionModule(predictor, threshold=0.1, n_inputs=3)
        assert module.check_energy_pj(100) == pytest.approx(
            100 * module.checker.check_energy_pj()
        )

    def test_nonfinite_scores_always_fire(self):
        """Fault injection: garbage accelerator outputs (NaN/inf scores)
        are flagged for recovery unconditionally."""
        from repro.predictors.base import ErrorPredictor

        class _Passthrough(ErrorPredictor):
            name = "stub"
            checker_kind = "none"
            is_input_based = False
            needs_fit = False

            def scores(self, features=None, approx_outputs=None,
                       true_errors=None):
                return np.asarray(true_errors, dtype=float)

        module = DetectionModule(_Passthrough(), threshold=100.0)
        scores = np.array([0.1, np.nan, 0.2, np.inf])
        result = module.detect(true_errors=scores)
        np.testing.assert_array_equal(
            result.recovery_bits, [False, True, False, True]
        )

    def test_threshold_mutable_between_invocations(self):
        module = _oracle_module(0.5)
        errors = np.array([0.3, 0.4])
        assert module.detect(true_errors=errors).n_fired == 0
        module.threshold = 0.2
        assert module.detect(true_errors=errors).n_fired == 2


class TestDetectInto:
    """The serving fast path (`detect_into`) must be numerically identical
    to `detect` — same bits, same scores, same statistics."""

    def test_matches_detect(self, rng):
        errors = rng.random(256)
        a = _oracle_module(0.5)
        b = _oracle_module(0.5)
        via_detect = a.detect(true_errors=errors)
        via_into = b.detect_into(true_errors=errors)
        np.testing.assert_array_equal(
            via_into.recovery_bits, via_detect.recovery_bits
        )
        np.testing.assert_allclose(
            via_into.scores, via_detect.scores, atol=1e-12, rtol=0
        )
        assert via_into.threshold == via_detect.threshold
        assert a.total_checks == b.total_checks
        assert a.total_fires == b.total_fires

    def test_bits_out_buffer_is_used(self):
        module = _oracle_module(0.5)
        errors = np.array([0.1, 0.9, 0.6, 0.2])
        bits = np.ones(4, dtype=bool)
        result = module.detect_into(true_errors=errors, bits_out=bits)
        assert result.recovery_bits is bits
        np.testing.assert_array_equal(bits, [False, True, True, False])

    def test_bits_out_shape_and_dtype_validated(self):
        module = _oracle_module(0.5)
        errors = np.array([0.1, 0.9])
        with pytest.raises(ConfigurationError, match="bits_out"):
            module.detect_into(
                true_errors=errors, bits_out=np.zeros(3, dtype=bool)
            )
        with pytest.raises(ConfigurationError, match="bits_out"):
            module.detect_into(
                true_errors=errors, bits_out=np.zeros(2, dtype=float)
            )

    def test_nonfinite_scores_fire_into_buffer(self):
        from repro.predictors.base import ErrorPredictor

        class _Passthrough(ErrorPredictor):
            name = "stub"
            checker_kind = "none"
            is_input_based = False
            needs_fit = False

            def scores(self, features=None, approx_outputs=None,
                       true_errors=None):
                return np.asarray(true_errors, dtype=float)

        module = DetectionModule(_Passthrough(), threshold=100.0)
        bits = np.zeros(4, dtype=bool)
        module.detect_into(
            true_errors=np.array([0.1, np.nan, 0.2, np.inf]), bits_out=bits
        )
        np.testing.assert_array_equal(bits, [False, True, False, True])
