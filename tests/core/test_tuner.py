"""Unit tests for the online tuner (Sec. 3.4)."""

import pytest

from repro.core.config import RumbaConfig, TunerMode
from repro.core.tuner import InvocationFeedback, OnlineTuner
from repro.errors import ConfigurationError


def _tuner(mode, **kwargs):
    return OnlineTuner(RumbaConfig(mode=mode, **kwargs))


class TestTOQMode:
    def test_threshold_is_error_budget(self):
        tuner = _tuner(TunerMode.TOQ, target_output_quality=0.9)
        assert tuner.threshold == pytest.approx(0.10)

    def test_threshold_fixed_across_invocations(self):
        tuner = _tuner(TunerMode.TOQ)
        before = tuner.threshold
        tuner.update(InvocationFeedback(fix_fraction=0.9))
        tuner.update(InvocationFeedback(fix_fraction=0.0))
        assert tuner.threshold == before


class TestEnergyMode:
    def test_over_budget_raises_threshold(self):
        tuner = _tuner(TunerMode.ENERGY, iteration_budget_fraction=0.2)
        before = tuner.threshold
        tuner.update(InvocationFeedback(fix_fraction=0.5))
        assert tuner.threshold > before

    def test_under_budget_lowers_threshold(self):
        tuner = _tuner(TunerMode.ENERGY, iteration_budget_fraction=0.2)
        before = tuner.threshold
        tuner.update(InvocationFeedback(fix_fraction=0.05))
        assert tuner.threshold < before

    def test_converges_toward_budget(self):
        """With fix fraction a decreasing function of threshold, the tuner
        oscillates into a band around the budget."""
        config = RumbaConfig(
            mode=TunerMode.ENERGY, iteration_budget_fraction=0.3,
            initial_threshold=1.0, threshold_gain=1.1,
        )
        tuner = OnlineTuner(config)

        def fix_fraction(threshold):
            return max(0.0, min(1.0, 1.0 - threshold))

        for _ in range(60):
            tuner.update(InvocationFeedback(fix_fraction(tuner.threshold)))
        assert fix_fraction(tuner.threshold) == pytest.approx(0.3, abs=0.1)

    def test_threshold_never_nonpositive(self):
        tuner = _tuner(TunerMode.ENERGY, initial_threshold=1e-8)
        for _ in range(50):
            tuner.update(InvocationFeedback(fix_fraction=0.0))
        assert tuner.threshold > 0.0


class TestQualityMode:
    def test_falling_behind_raises_threshold(self):
        tuner = _tuner(TunerMode.QUALITY)
        before = tuner.threshold
        tuner.update(InvocationFeedback(fix_fraction=0.5, cpu_kept_up=False))
        assert tuner.threshold > before

    def test_idle_cpu_lowers_threshold(self):
        tuner = _tuner(TunerMode.QUALITY)
        before = tuner.threshold
        tuner.update(
            InvocationFeedback(fix_fraction=0.1, cpu_kept_up=True,
                               cpu_utilization=0.2)
        )
        assert tuner.threshold < before

    def test_saturated_cpu_holds_threshold(self):
        tuner = _tuner(TunerMode.QUALITY)
        before = tuner.threshold
        tuner.update(
            InvocationFeedback(fix_fraction=0.3, cpu_kept_up=True,
                               cpu_utilization=0.99)
        )
        assert tuner.threshold == before


class TestBackpressureDegradation:
    """degrade()/relax() — the serving layer's overload lever (works in
    every mode, including TOQ where update() holds the threshold fixed)."""

    def test_degrade_scales_threshold_and_tracks_level(self):
        tuner = _tuner(TunerMode.TOQ, target_output_quality=0.9)
        before = tuner.threshold
        assert tuner.degradation_level == 0
        tuner.degrade(factor=2.0)
        assert tuner.threshold == pytest.approx(before * 2.0)
        assert tuner.degradation_level == 1
        tuner.degrade(factor=2.0)
        assert tuner.threshold == pytest.approx(before * 4.0)
        assert tuner.degradation_level == 2

    def test_relax_is_symmetric(self):
        tuner = _tuner(TunerMode.ENERGY)
        before = tuner.threshold
        tuner.degrade(factor=1.5)
        tuner.degrade(factor=1.5)
        tuner.relax(factor=1.5)
        tuner.relax(factor=1.5)
        assert tuner.threshold == pytest.approx(before)
        assert tuner.degradation_level == 0

    def test_relax_at_level_zero_is_noop(self):
        tuner = _tuner(TunerMode.QUALITY)
        before = tuner.threshold
        tuner.relax()
        assert tuner.threshold == before
        assert tuner.degradation_level == 0

    def test_default_factor_is_threshold_gain(self):
        tuner = _tuner(TunerMode.ENERGY, threshold_gain=1.25)
        before = tuner.threshold
        tuner.degrade()
        assert tuner.threshold == pytest.approx(before * 1.25)

    def test_degrade_recorded_in_history(self):
        tuner = _tuner(TunerMode.TOQ)
        tuner.degrade(factor=2.0)
        assert len(tuner.history) == 2
        assert tuner.history[-1] == tuner.threshold

    def test_invalid_factor_rejected(self):
        tuner = _tuner(TunerMode.ENERGY)
        with pytest.raises(ConfigurationError):
            tuner.degrade(factor=1.0)
        with pytest.raises(ConfigurationError):
            tuner.degrade(factor=0.5)


class TestTunerGeneral:
    def test_history_recorded(self):
        tuner = _tuner(TunerMode.ENERGY)
        tuner.update(InvocationFeedback(fix_fraction=1.0))
        tuner.update(InvocationFeedback(fix_fraction=0.0))
        assert len(tuner.history) == 3  # initial + 2 updates

    def test_invalid_feedback(self):
        tuner = _tuner(TunerMode.ENERGY)
        with pytest.raises(ConfigurationError):
            tuner.update(InvocationFeedback(fix_fraction=1.5))
