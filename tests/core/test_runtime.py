"""Integration-level tests for the end-to-end RumbaSystem."""

import numpy as np
import pytest

from repro.core import RumbaConfig, TunerMode, prepare_system
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def tree_system():
    return prepare_system("fft", scheme="treeErrors", seed=0)


@pytest.fixture(scope="module")
def fft_inputs():
    rng = np.random.default_rng(77)
    from repro.apps import get_application

    return get_application("fft").test_inputs(rng)


class TestRunInvocation:
    def test_record_fields_populated(self, tree_system, fft_inputs):
        record = tree_system.run_invocation(fft_inputs[:2000])
        assert record.outputs.shape == (2000, 2)
        assert record.measured_error is not None
        assert record.unchecked_error is not None
        assert 0.0 <= record.fix_fraction <= 1.0
        assert record.costs.energy_savings > 0

    def test_fixes_reduce_error(self, tree_system, fft_inputs):
        record = tree_system.run_invocation(fft_inputs[:2000])
        assert record.measured_error <= record.unchecked_error

    def test_toq_mode_approaches_target(self, fft_inputs):
        system = prepare_system(
            "fft",
            scheme="treeErrors",
            config=RumbaConfig(scheme="treeErrors", target_output_quality=0.9),
            seed=0,
        )
        record = system.run_invocation(fft_inputs[:3000])
        # The TOQ threshold targets per-element error <= 10%; the whole-
        # output error lands at or below the unchecked error and near target.
        assert record.measured_error < record.unchecked_error
        assert record.measured_error < 0.12

    def test_measure_quality_false_skips_measurement(self, tree_system, fft_inputs):
        record = tree_system.run_invocation(
            fft_inputs[:500], measure_quality=False
        )
        assert record.measured_error is None
        assert record.unchecked_error is None

    def test_empty_invocation_rejected(self, tree_system):
        with pytest.raises(ConfigurationError):
            tree_system.run_invocation(np.empty((0, 1)))

    def test_scheme_must_match_config(self):
        from repro.predictors import make_predictor
        from repro.core.runtime import RumbaSystem
        from repro.core.offline import prepare_backend
        from repro.apps import get_application

        app = get_application("fft")
        backend, _ = prepare_backend(app, seed=0)
        with pytest.raises(ConfigurationError):
            RumbaSystem(
                app,
                backend,
                make_predictor("EMA"),
                config=RumbaConfig(scheme="treeErrors"),
            )

    def test_outputs_are_merged_exact_and_approx(self, fft_inputs):
        system = prepare_system("fft", scheme="Ideal", seed=0)
        x = fft_inputs[:1000]
        record = system.run_invocation(x)
        exact = system.app.exact(x)
        approx = system.backend(x)
        fixed = record.recovery.recovery_indices
        np.testing.assert_allclose(record.outputs[fixed], exact[fixed])
        untouched = np.setdiff1d(np.arange(1000), fixed)
        np.testing.assert_allclose(record.outputs[untouched], approx[untouched])


class TestConfigQueue:
    def test_configuration_shipped_at_launch(self, tree_system):
        """Fig. 4: accelerator weights and checker coefficients travel
        over the config queue when the kernel is set up."""
        labels = [label for label, _ in tree_system.config_queue.payloads]
        assert labels == ["accelerator", "checker"]
        accel_words = dict(tree_system.config_queue.payloads)["accelerator"]
        assert accel_words == tree_system.backend.topology.n_weights
        checker_words = dict(tree_system.config_queue.payloads)["checker"]
        assert checker_words == tree_system.predictor.coefficient_count()


class TestRunStream:
    def test_energy_mode_tracks_budget(self, fft_inputs):
        config = RumbaConfig(
            scheme="treeErrors",
            mode=TunerMode.ENERGY,
            iteration_budget_fraction=0.15,
            initial_threshold=0.5,
            threshold_gain=1.3,
        )
        system = prepare_system("fft", scheme="treeErrors", config=config, seed=0)
        chunks = [fft_inputs[i * 500:(i + 1) * 500] for i in range(8)]
        records = system.run_stream(chunks)
        late = [r.fix_fraction for r in records[4:]]
        assert np.mean(late) == pytest.approx(0.15, abs=0.10)

    def test_quality_mode_fills_cpu(self, fft_inputs):
        config = RumbaConfig(
            scheme="treeErrors",
            mode=TunerMode.QUALITY,
            initial_threshold=10.0,  # start fixing nothing
            threshold_gain=1.5,
        )
        system = prepare_system("fft", scheme="treeErrors", config=config, seed=0)
        chunks = [fft_inputs[i * 400:(i + 1) * 400] for i in range(10)]
        records = system.run_stream(chunks)
        # The tuner lowers the threshold until the CPU is meaningfully busy.
        assert records[-1].fix_fraction > records[0].fix_fraction
        assert records[-1].pipeline.cpu_utilization > 0.3

    def test_summaries(self, fft_inputs):
        system = prepare_system("fft", scheme="treeErrors", seed=0)
        system.run_stream([fft_inputs[:300], fft_inputs[300:600]])
        assert 0.0 <= system.mean_fix_fraction <= 1.0
        assert system.mean_measured_error >= 0.0

    def test_summaries_require_records(self):
        system = prepare_system("fft", scheme="treeErrors", seed=0)
        system.records.clear()
        with pytest.raises(ConfigurationError):
            _ = system.mean_fix_fraction


class TestConfigQueueRoundTrip:
    def test_checker_coefficients_survive_the_queue(self, tree_system):
        """The queue must carry the fitted coefficients themselves, not a
        placeholder of the right length."""
        received = tree_system.config_queue.received("checker")
        assert received == tree_system.predictor.coefficients()
        assert any(value != 0.0 for value in received)

    def test_accelerator_weights_survive_the_queue(self, tree_system):
        received = tree_system.config_queue.received("accelerator")
        expected = [float(w) for w in tree_system.backend.network.get_flat_params()]
        assert received == expected

    def test_all_fitted_predictors_declare_matching_counts(self, fft_inputs):
        for scheme in ("linearErrors", "treeErrors", "EMA"):
            system = prepare_system("fft", scheme=scheme, seed=0)
            coefficients = system.predictor.coefficients()
            assert len(coefficients) == system.predictor.coefficient_count()
            assert system.config_queue.received("checker") == coefficients


class TestMaxRecords:
    def _capped_clone(self, system, max_records):
        from repro.core import RumbaSystem

        return RumbaSystem(
            app=system.app,
            backend=system.backend,
            predictor=system.predictor,
            config=system.config,
            max_records=max_records,
        )

    def test_ring_buffer_keeps_last_n(self, tree_system, fft_inputs):
        system = self._capped_clone(tree_system, 3)
        chunks = [fft_inputs[i * 200:(i + 1) * 200] for i in range(5)]
        records = system.run_stream(chunks)
        assert len(records) == 5  # run_stream still returns everything
        assert len(system.records) == 3
        assert list(system.records) == records[2:]
        assert system.total_invocations == 5

    def test_windowed_summaries_still_work(self, tree_system, fft_inputs):
        system = self._capped_clone(tree_system, 2)
        system.run_stream([fft_inputs[:300], fft_inputs[300:600], fft_inputs[600:900]])
        assert 0.0 <= system.mean_fix_fraction <= 1.0
        assert system.mean_measured_error >= 0.0

    def test_lifetime_aggregates_via_registry(self, tree_system, fft_inputs):
        from repro.observability import MetricsRegistry, Telemetry

        system = self._capped_clone(tree_system, 2)
        registry = MetricsRegistry()
        system.attach_telemetry(
            Telemetry(app="fft", scheme="treeErrors", registry=registry)
        )
        for i in range(4):
            system.run_invocation(fft_inputs[i * 200:(i + 1) * 200])
        child = registry.get("rumba_invocations_total").labels(
            app="fft", scheme="treeErrors"
        )
        assert child.value == 4  # lifetime count outlives the ring buffer
        assert len(system.records) == 2

    def test_bad_max_records_rejected(self, tree_system):
        with pytest.raises(ConfigurationError):
            self._capped_clone(tree_system, 0)


class TestSplitPhaseInvocation:
    """begin_invocation/complete_invocation must equal run_invocation —
    the serving layer depends on the split producing identical records."""

    def test_split_equals_monolithic(self, tree_system, fft_inputs):
        x = fft_inputs[:1500]
        a = tree_system.clone_shard()
        b = tree_system.clone_shard()
        whole = a.run_invocation(x)
        pending = b.begin_invocation(x)
        split = b.complete_invocation(pending)
        assert split.measured_error == pytest.approx(whole.measured_error)
        assert split.fix_fraction == pytest.approx(whole.fix_fraction)
        assert split.detection.fire_fraction == pytest.approx(
            whole.detection.fire_fraction
        )
        np.testing.assert_allclose(split.outputs, whole.outputs)

    def test_pending_exposes_accelerator_half(self, tree_system, fft_inputs):
        shard = tree_system.clone_shard()
        pending = shard.begin_invocation(fft_inputs[:400])
        assert pending.n_elements == 400
        assert pending.approx.shape[0] == 400
        # Detection has already happened on the accelerator side...
        assert 0.0 <= pending.detection.fire_fraction <= 1.0
        # ...but nothing was recorded yet: recovery is the CPU's half.
        assert shard.total_invocations == 0
        record = shard.complete_invocation(pending)
        assert shard.total_invocations == 1
        assert record.recovery.n_recovered == int(np.sum(pending.recovery_bits))

    def test_begin_rejects_empty(self, tree_system):
        with pytest.raises(ConfigurationError):
            tree_system.clone_shard().begin_invocation(np.empty((0, 1)))


class TestCloneShard:
    def test_clone_shares_trained_artifacts(self, tree_system):
        shard = tree_system.clone_shard()
        assert shard.app is tree_system.app
        assert shard.backend is tree_system.backend
        # The predictor is stateful (EMA) — it must NOT be shared.
        assert shard.predictor is not tree_system.predictor
        assert shard.tuner.threshold == tree_system.tuner.threshold

    def test_clone_state_is_independent(self, tree_system, fft_inputs):
        shard = tree_system.clone_shard()
        before = tree_system.total_invocations
        threshold_before = tree_system.tuner.threshold
        shard.run_invocation(fft_inputs[:800])
        shard.tuner.degrade(factor=2.0)
        assert tree_system.total_invocations == before
        assert tree_system.tuner.threshold == threshold_before
        assert shard.records is not tree_system.records

    def test_clone_respects_max_records(self, tree_system, fft_inputs):
        shard = tree_system.clone_shard(max_records=2)
        for i in range(4):
            shard.run_invocation(fft_inputs[i * 200:(i + 1) * 200])
        assert len(shard.records) == 2
        assert shard.total_invocations == 4


class TestApplyBackpressure:
    def test_roundtrip_restores_threshold(self, tree_system, fft_inputs):
        shard = tree_system.clone_shard()
        start = shard.tuner.threshold
        raised = shard.apply_backpressure(+1, factor=2.0)
        assert raised == pytest.approx(start * 2.0)
        # The detection module reads the tuner's threshold at the next
        # begin_invocation — that's the handoff point.
        pending = shard.begin_invocation(fft_inputs[:200])
        assert pending.detection.threshold == pytest.approx(start * 2.0)
        shard.complete_invocation(pending)
        restored = shard.apply_backpressure(-1, factor=2.0)
        assert restored == pytest.approx(start)

    def test_zero_direction_reads_threshold(self, tree_system):
        shard = tree_system.clone_shard()
        assert shard.apply_backpressure(0) == shard.tuner.threshold


class TestEnsembleRuntime:
    """RumbaSystem with the routed multi-approximator ensemble."""

    @pytest.fixture(scope="class")
    def ens_system(self):
        from repro.approx.ensemble import EnsembleSpec

        return prepare_system(
            "fft", scheme="treeErrors", seed=0, ensemble=EnsembleSpec()
        )

    def test_record_carries_choices(self, ens_system, fft_inputs):
        shard = ens_system.clone_shard()
        record = shard.run_invocation(fft_inputs[:500])
        assert record.choices is not None
        assert record.choices.shape == (500,)
        assert record.choices.dtype == np.int8
        assert record.choices.min() >= 0
        assert record.choices.max() < len(shard.ensemble.members)
        assert int(shard.ensemble.rows_routed.sum()) == 500

    def test_forced_choices_reproduce_run_exactly(self, ens_system,
                                                  fft_inputs):
        x = fft_inputs[:600]
        live = ens_system.clone_shard().run_invocation(x)
        forced = ens_system.clone_shard().run_invocation(
            x, forced_choices=live.choices
        )
        assert forced.outputs.tobytes() == live.outputs.tobytes()
        np.testing.assert_array_equal(forced.choices, live.choices)
        assert forced.detection.n_fired == live.detection.n_fired

    def test_forced_choices_bypass_online_drift(self, ens_system,
                                                fft_inputs):
        """Forcing must reproduce a recorded run even when the replaying
        shard's router has since learned different preferences — the
        replay determinism contract."""
        x = fft_inputs[:400]
        live = ens_system.clone_shard().run_invocation(x)
        drifted = ens_system.clone_shard()
        drifted.ensemble.router.caution[:] = 7.0  # simulate learning
        forced = drifted.run_invocation(x, forced_choices=live.choices)
        assert forced.outputs.tobytes() == live.outputs.tobytes()
        np.testing.assert_array_equal(forced.choices, live.choices)

    def test_forced_choices_require_ensemble(self, tree_system,
                                             fft_inputs):
        with pytest.raises(ConfigurationError,
                           match="requires an ensemble"):
            tree_system.clone_shard().run_invocation(
                fft_inputs[:10], forced_choices=np.zeros(10, dtype=np.int8)
            )

    def test_forced_choices_length_validated(self, ens_system,
                                             fft_inputs):
        with pytest.raises(ConfigurationError, match="one entry per row"):
            ens_system.clone_shard().run_invocation(
                fft_inputs[:10], forced_choices=np.zeros(4, dtype=np.int8)
            )

    def test_detection_fires_accumulate_per_member(self, ens_system,
                                                   fft_inputs):
        shard = ens_system.clone_shard()
        fired = 0
        for i in range(3):
            record = shard.run_invocation(
                fft_inputs[i * 300:(i + 1) * 300]
            )
            fired += record.detection.n_fired
        assert int(shard.ensemble.fires_by_member.sum()) == fired

    def test_recovery_feeds_online_learner(self, ens_system, fft_inputs):
        shard = ens_system.clone_shard()
        recovered = 0
        for i in range(4):
            record = shard.run_invocation(
                fft_inputs[i * 400:(i + 1) * 400]
            )
            recovered += record.recovery.n_recovered
        assert recovered > 0, "fixture needs a config that recovers rows"
        assert shard.ensemble.learner.samples_consumed == recovered

    def test_degradation_hook_reaches_router(self, ens_system):
        shard = ens_system.clone_shard()
        assert shard.tuner.on_degradation == shard.ensemble.set_degradation
        shard.tuner.on_degradation(2)
        assert shard.ensemble.router.degradation_level == 2

    def test_clone_shard_gets_private_ensemble(self, ens_system):
        shard = ens_system.clone_shard()
        assert shard.ensemble is not ens_system.ensemble
        assert shard.backend is shard.ensemble.reference
        # The reference weights are still the shared trained artifact.
        assert shard.backend is ens_system.ensemble.reference


class TestPickleRoundTrip:
    """The process serving backend ships systems across process
    boundaries; a pickled system must behave identically when restored."""

    def test_system_survives_pickle(self, tree_system, fft_inputs):
        import pickle

        restored = pickle.loads(pickle.dumps(tree_system))
        x = np.atleast_2d(fft_inputs)[:256]
        a = tree_system.clone_shard().run_invocation(x)
        b = restored.clone_shard().run_invocation(x)
        assert a.outputs.tobytes() == b.outputs.tobytes()
        assert a.detection.n_fired == b.detection.n_fired
        assert a.fix_fraction == b.fix_fraction

    def test_restored_locks_are_fresh(self, tree_system):
        import pickle
        import threading

        restored = pickle.loads(pickle.dumps(tree_system))
        assert isinstance(restored._mutex, type(threading.Lock()))
        # Telemetry binds to the origin process's registry: stripped.
        assert restored.telemetry is None

    def test_registry_application_pickles_by_name(self):
        import pickle

        from repro.apps import get_application

        app = get_application("fft")
        restored = pickle.loads(pickle.dumps(app))
        assert restored.name == app.name
        x = np.linspace(0.1, 1.0, 32).reshape(-1, 1)
        assert np.array_equal(restored.exact(x), app.exact(x))

    def test_hand_built_application_still_fails_loudly(self):
        import pickle

        from repro.apps import get_application

        app = get_application("fft")
        app._registry_backed = False  # as if constructed outside the registry
        with pytest.raises(Exception):
            pickle.dumps(app)

    def test_shared_app_reference_restored_once(self, tree_system):
        import pickle

        restored = pickle.loads(pickle.dumps(tree_system))
        assert restored.recovery.exact_kernel.__self__ is restored.app
