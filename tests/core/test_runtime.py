"""Integration-level tests for the end-to-end RumbaSystem."""

import numpy as np
import pytest

from repro.core import RumbaConfig, TunerMode, prepare_system
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def tree_system():
    return prepare_system("fft", scheme="treeErrors", seed=0)


@pytest.fixture(scope="module")
def fft_inputs():
    rng = np.random.default_rng(77)
    from repro.apps import get_application

    return get_application("fft").test_inputs(rng)


class TestRunInvocation:
    def test_record_fields_populated(self, tree_system, fft_inputs):
        record = tree_system.run_invocation(fft_inputs[:2000])
        assert record.outputs.shape == (2000, 2)
        assert record.measured_error is not None
        assert record.unchecked_error is not None
        assert 0.0 <= record.fix_fraction <= 1.0
        assert record.costs.energy_savings > 0

    def test_fixes_reduce_error(self, tree_system, fft_inputs):
        record = tree_system.run_invocation(fft_inputs[:2000])
        assert record.measured_error <= record.unchecked_error

    def test_toq_mode_approaches_target(self, fft_inputs):
        system = prepare_system(
            "fft",
            scheme="treeErrors",
            config=RumbaConfig(scheme="treeErrors", target_output_quality=0.9),
            seed=0,
        )
        record = system.run_invocation(fft_inputs[:3000])
        # The TOQ threshold targets per-element error <= 10%; the whole-
        # output error lands at or below the unchecked error and near target.
        assert record.measured_error < record.unchecked_error
        assert record.measured_error < 0.12

    def test_measure_quality_false_skips_measurement(self, tree_system, fft_inputs):
        record = tree_system.run_invocation(
            fft_inputs[:500], measure_quality=False
        )
        assert record.measured_error is None
        assert record.unchecked_error is None

    def test_empty_invocation_rejected(self, tree_system):
        with pytest.raises(ConfigurationError):
            tree_system.run_invocation(np.empty((0, 1)))

    def test_scheme_must_match_config(self):
        from repro.predictors import make_predictor
        from repro.core.runtime import RumbaSystem
        from repro.core.offline import prepare_backend
        from repro.apps import get_application

        app = get_application("fft")
        backend, _ = prepare_backend(app, seed=0)
        with pytest.raises(ConfigurationError):
            RumbaSystem(
                app,
                backend,
                make_predictor("EMA"),
                config=RumbaConfig(scheme="treeErrors"),
            )

    def test_outputs_are_merged_exact_and_approx(self, fft_inputs):
        system = prepare_system("fft", scheme="Ideal", seed=0)
        x = fft_inputs[:1000]
        record = system.run_invocation(x)
        exact = system.app.exact(x)
        approx = system.backend(x)
        fixed = record.recovery.recovery_indices
        np.testing.assert_allclose(record.outputs[fixed], exact[fixed])
        untouched = np.setdiff1d(np.arange(1000), fixed)
        np.testing.assert_allclose(record.outputs[untouched], approx[untouched])


class TestConfigQueue:
    def test_configuration_shipped_at_launch(self, tree_system):
        """Fig. 4: accelerator weights and checker coefficients travel
        over the config queue when the kernel is set up."""
        labels = [label for label, _ in tree_system.config_queue.payloads]
        assert labels == ["accelerator", "checker"]
        accel_words = dict(tree_system.config_queue.payloads)["accelerator"]
        assert accel_words == tree_system.backend.topology.n_weights
        checker_words = dict(tree_system.config_queue.payloads)["checker"]
        assert checker_words == tree_system.predictor.coefficient_count()


class TestRunStream:
    def test_energy_mode_tracks_budget(self, fft_inputs):
        config = RumbaConfig(
            scheme="treeErrors",
            mode=TunerMode.ENERGY,
            iteration_budget_fraction=0.15,
            initial_threshold=0.5,
            threshold_gain=1.3,
        )
        system = prepare_system("fft", scheme="treeErrors", config=config, seed=0)
        chunks = [fft_inputs[i * 500:(i + 1) * 500] for i in range(8)]
        records = system.run_stream(chunks)
        late = [r.fix_fraction for r in records[4:]]
        assert np.mean(late) == pytest.approx(0.15, abs=0.10)

    def test_quality_mode_fills_cpu(self, fft_inputs):
        config = RumbaConfig(
            scheme="treeErrors",
            mode=TunerMode.QUALITY,
            initial_threshold=10.0,  # start fixing nothing
            threshold_gain=1.5,
        )
        system = prepare_system("fft", scheme="treeErrors", config=config, seed=0)
        chunks = [fft_inputs[i * 400:(i + 1) * 400] for i in range(10)]
        records = system.run_stream(chunks)
        # The tuner lowers the threshold until the CPU is meaningfully busy.
        assert records[-1].fix_fraction > records[0].fix_fraction
        assert records[-1].pipeline.cpu_utilization > 0.3

    def test_summaries(self, fft_inputs):
        system = prepare_system("fft", scheme="treeErrors", seed=0)
        system.run_stream([fft_inputs[:300], fft_inputs[300:600]])
        assert 0.0 <= system.mean_fix_fraction <= 1.0
        assert system.mean_measured_error >= 0.0

    def test_summaries_require_records(self):
        system = prepare_system("fft", scheme="treeErrors", seed=0)
        system.records.clear()
        with pytest.raises(ConfigurationError):
            _ = system.mean_fix_fraction


class TestConfigQueueRoundTrip:
    def test_checker_coefficients_survive_the_queue(self, tree_system):
        """The queue must carry the fitted coefficients themselves, not a
        placeholder of the right length."""
        received = tree_system.config_queue.received("checker")
        assert received == tree_system.predictor.coefficients()
        assert any(value != 0.0 for value in received)

    def test_accelerator_weights_survive_the_queue(self, tree_system):
        received = tree_system.config_queue.received("accelerator")
        expected = [float(w) for w in tree_system.backend.network.get_flat_params()]
        assert received == expected

    def test_all_fitted_predictors_declare_matching_counts(self, fft_inputs):
        for scheme in ("linearErrors", "treeErrors", "EMA"):
            system = prepare_system("fft", scheme=scheme, seed=0)
            coefficients = system.predictor.coefficients()
            assert len(coefficients) == system.predictor.coefficient_count()
            assert system.config_queue.received("checker") == coefficients


class TestMaxRecords:
    def _capped_clone(self, system, max_records):
        from repro.core import RumbaSystem

        return RumbaSystem(
            app=system.app,
            backend=system.backend,
            predictor=system.predictor,
            config=system.config,
            max_records=max_records,
        )

    def test_ring_buffer_keeps_last_n(self, tree_system, fft_inputs):
        system = self._capped_clone(tree_system, 3)
        chunks = [fft_inputs[i * 200:(i + 1) * 200] for i in range(5)]
        records = system.run_stream(chunks)
        assert len(records) == 5  # run_stream still returns everything
        assert len(system.records) == 3
        assert list(system.records) == records[2:]
        assert system.total_invocations == 5

    def test_windowed_summaries_still_work(self, tree_system, fft_inputs):
        system = self._capped_clone(tree_system, 2)
        system.run_stream([fft_inputs[:300], fft_inputs[300:600], fft_inputs[600:900]])
        assert 0.0 <= system.mean_fix_fraction <= 1.0
        assert system.mean_measured_error >= 0.0

    def test_lifetime_aggregates_via_registry(self, tree_system, fft_inputs):
        from repro.observability import MetricsRegistry, Telemetry

        system = self._capped_clone(tree_system, 2)
        registry = MetricsRegistry()
        system.attach_telemetry(
            Telemetry(app="fft", scheme="treeErrors", registry=registry)
        )
        for i in range(4):
            system.run_invocation(fft_inputs[i * 200:(i + 1) * 200])
        child = registry.get("rumba_invocations_total").labels(
            app="fft", scheme="treeErrors"
        )
        assert child.value == 4  # lifetime count outlives the ring buffer
        assert len(system.records) == 2

    def test_bad_max_records_rejected(self, tree_system):
        with pytest.raises(ConfigurationError):
            self._capped_clone(tree_system, 0)
