"""Unit tests for offline preparation and its cache."""

import pytest

from repro.apps import get_application
from repro.core.config import RumbaConfig
from repro.core.offline import clear_cache, prepare_backend, prepare_system
from repro.errors import ConfigurationError


class TestPrepareBackend:
    def test_cache_returns_same_object(self):
        app = get_application("fft")
        a, _ = prepare_backend(app, seed=0)
        b, _ = prepare_backend(app, seed=0)
        assert a is b

    def test_cache_keyed_by_seed_and_topology(self):
        app = get_application("fft")
        a, _ = prepare_backend(app, seed=0)
        b, _ = prepare_backend(app, use_rumba_topology=False, seed=0)
        assert a is not b
        assert a.topology != b.topology

    def test_cache_bypass(self):
        app = get_application("fft")
        a, _ = prepare_backend(app, seed=0)
        b, _ = prepare_backend(app, seed=0, cache=False)
        assert a is not b


class TestPrepareSystem:
    def test_accepts_name_or_application(self):
        by_name = prepare_system("fft", scheme="EMA", seed=0)
        by_app = prepare_system(get_application("fft"), scheme="EMA", seed=0)
        assert by_name.app.name == by_app.app.name == "fft"

    def test_scheme_config_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            prepare_system(
                "fft", scheme="EMA", config=RumbaConfig(scheme="treeErrors")
            )

    def test_default_config_uses_scheme(self):
        system = prepare_system("fft", scheme="linearErrors", seed=0)
        assert system.config.scheme == "linearErrors"
        assert system.predictor.name == "linearErrors"

    @pytest.mark.parametrize(
        "scheme", ["Ideal", "Random", "Uniform", "EMA", "linearErrors",
                   "treeErrors"]
    )
    def test_all_schemes_preparable(self, scheme):
        system = prepare_system("fft", scheme=scheme, seed=0)
        assert system.predictor.name == scheme
