"""Round-trip tests for artifact serialization."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.io import load_backend, load_predictor, save_backend, save_predictor
from repro.predictors import (
    DecisionTreeErrorPredictor,
    EMAPredictor,
    LinearErrorPredictor,
    OraclePredictor,
    RandomPredictor,
    UniformPredictor,
)


class TestBackendRoundtrip:
    def test_outputs_identical(self, tmp_path, fft_app, fft_backend):
        path = tmp_path / "fft_backend.npz"
        save_backend(fft_backend, path)
        restored = load_backend(path)
        rng = np.random.default_rng(3)
        x = fft_app.test_inputs(rng)[:200]
        np.testing.assert_array_equal(restored(x), fft_backend(x))
        assert restored.topology == fft_backend.topology

    def test_input_columns_preserved(self, tmp_path):
        from repro.apps import get_application
        from repro.approx import train_npu_backend
        from repro.nn.trainer import RPropTrainer

        app = get_application("blackscholes")
        backend, _ = train_npu_backend(
            app, trainer=RPropTrainer(max_epochs=30, patience=10), seed=0
        )
        path = tmp_path / "bs.npz"
        save_backend(backend, path)
        restored = load_backend(path)
        assert restored.input_columns == backend.input_columns
        rng = np.random.default_rng(1)
        x = app.test_inputs(rng)[:50]
        np.testing.assert_array_equal(restored(x), backend(x))

    def test_wrong_artifact_rejected(self, tmp_path, fft_backend):
        path = tmp_path / "backend.npz"
        save_backend(fft_backend, path)
        with pytest.raises(ConfigurationError, match="expected"):
            load_predictor(path)


class TestPredictorRoundtrip:
    def test_linear(self, tmp_path, rng):
        predictor = LinearErrorPredictor().fit(
            rng.random((50, 3)), rng.random(50)
        )
        path = tmp_path / "linear.npz"
        save_predictor(predictor, path)
        restored = load_predictor(path)
        x = rng.random((20, 3))
        np.testing.assert_array_equal(
            restored.scores(features=x), predictor.scores(features=x)
        )

    def test_tree(self, tmp_path, rng):
        x = rng.random((500, 2))
        errors = np.where(x[:, 0] > 0.5, 0.8, 0.1) + 0.1 * x[:, 1]
        predictor = DecisionTreeErrorPredictor(max_depth=5).fit(x, errors)
        path = tmp_path / "tree.npz"
        save_predictor(predictor, path)
        restored = load_predictor(path)
        probe = rng.random((100, 2))
        np.testing.assert_array_equal(
            restored.scores(features=probe), predictor.scores(features=probe)
        )
        assert restored.max_depth == 5
        assert restored.coefficient_count() == predictor.coefficient_count()

    def test_ema(self, tmp_path):
        path = tmp_path / "ema.npz"
        save_predictor(EMAPredictor(history=31), path)
        restored = load_predictor(path)
        assert isinstance(restored, EMAPredictor)
        assert restored.history == 31

    @pytest.mark.parametrize("predictor", [OraclePredictor(),
                                           UniformPredictor()])
    def test_stateless(self, tmp_path, predictor):
        path = tmp_path / "p.npz"
        save_predictor(predictor, path)
        assert type(load_predictor(path)) is type(predictor)

    def test_random_seed_preserved(self, tmp_path):
        path = tmp_path / "r.npz"
        save_predictor(RandomPredictor(seed=77), path)
        restored = load_predictor(path)
        assert restored.seed == 77

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_predictor(LinearErrorPredictor(), tmp_path / "x.npz")
        with pytest.raises(NotFittedError):
            save_predictor(DecisionTreeErrorPredictor(), tmp_path / "y.npz")
