"""Unit tests for activation functions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.nn.activations import (
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
    get_activation,
)

FINITE = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


class TestSigmoid:
    def test_midpoint(self):
        assert Sigmoid()(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_range(self):
        x = np.linspace(-100, 100, 201)
        y = Sigmoid()(x)
        assert np.all(y >= 0.0) and np.all(y <= 1.0)

    def test_monotone(self):
        x = np.linspace(-10, 10, 101)
        y = Sigmoid()(x)
        assert np.all(np.diff(y) > 0)

    def test_no_overflow_at_extremes(self):
        y = Sigmoid()(np.array([-1e6, 1e6]))
        assert np.all(np.isfinite(y))
        assert y[0] == pytest.approx(0.0, abs=1e-12)
        assert y[1] == pytest.approx(1.0, abs=1e-12)

    @given(FINITE)
    def test_derivative_matches_finite_difference(self, x):
        act = Sigmoid()
        h = 1e-6
        arr = np.array([x])
        numeric = (act(arr + h) - act(arr - h)) / (2 * h)
        analytic = act.derivative(act(arr))
        assert numeric[0] == pytest.approx(analytic[0], abs=1e-5)


class TestTanh:
    def test_odd_function(self):
        x = np.linspace(-5, 5, 21)
        act = Tanh()
        np.testing.assert_allclose(act(-x), -act(x))

    @given(FINITE)
    def test_derivative_matches_finite_difference(self, x):
        act = Tanh()
        h = 1e-6
        arr = np.array([x])
        numeric = (act(arr + h) - act(arr - h)) / (2 * h)
        assert numeric[0] == pytest.approx(act.derivative(act(arr))[0], abs=1e-4)


class TestReLU:
    def test_clamps_negatives(self):
        np.testing.assert_array_equal(
            ReLU()(np.array([-2.0, 0.0, 3.0])), [0.0, 0.0, 3.0]
        )

    def test_derivative_is_indicator(self):
        act = ReLU()
        out = act(np.array([-1.0, 2.0]))
        np.testing.assert_array_equal(act.derivative(out), [0.0, 1.0])


class TestLinear:
    def test_identity(self):
        x = np.array([-3.0, 0.5])
        np.testing.assert_array_equal(Linear()(x), x)

    def test_unit_derivative(self):
        np.testing.assert_array_equal(
            Linear().derivative(np.array([5.0, -2.0])), [1.0, 1.0]
        )


class TestOutParameter:
    """Every activation's in-place path must match its allocating path
    bit-for-bit, including ``out is x`` (the fused forward's usage)."""

    @pytest.mark.parametrize(
        "act", [Sigmoid(), Tanh(), ReLU(), Linear()],
        ids=lambda a: a.name,
    )
    def test_out_buffer_matches(self, act):
        x = np.linspace(-80, 80, 163)
        expected = act(x)
        out = np.full_like(x, np.nan)
        result = act(x, out=out)
        assert result is out
        np.testing.assert_array_equal(result, expected)

    @pytest.mark.parametrize(
        "act", [Sigmoid(), Tanh(), ReLU(), Linear()],
        ids=lambda a: a.name,
    )
    def test_in_place_on_input(self, act):
        x = np.linspace(-80, 80, 163)
        expected = act(x)
        work = x.copy()
        result = act(work, out=work)
        assert result is work
        np.testing.assert_array_equal(result, expected)


class TestRegistry:
    @pytest.mark.parametrize("name", ["sigmoid", "tanh", "relu", "linear"])
    def test_lookup(self, name):
        assert get_activation(name).name == name

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown activation"):
            get_activation("softmax")
