"""Unit and property tests for feature scalers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import NotFittedError
from repro.nn.scaler import MinMaxScaler, StandardScaler

matrices = arrays(
    dtype=float,
    shape=st.tuples(st.integers(2, 20), st.integers(1, 5)),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestMinMaxScaler:
    def test_maps_to_unit_range(self, rng):
        x = rng.normal(size=(50, 3)) * 10
        scaled = MinMaxScaler().fit_transform(x)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0
        np.testing.assert_allclose(scaled.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(scaled.max(axis=0), 1.0, atol=1e-12)

    def test_custom_range(self, rng):
        x = rng.normal(size=(30, 2))
        scaled = MinMaxScaler((-1.0, 1.0)).fit_transform(x)
        np.testing.assert_allclose(scaled.min(axis=0), -1.0, atol=1e-12)
        np.testing.assert_allclose(scaled.max(axis=0), 1.0, atol=1e-12)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            MinMaxScaler((1.0, 1.0))

    def test_constant_column_maps_to_midpoint(self):
        x = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        scaled = MinMaxScaler().fit_transform(x)
        np.testing.assert_allclose(scaled[:, 0], 0.5)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.ones((2, 2)))
        with pytest.raises(NotFittedError):
            MinMaxScaler().inverse_transform(np.ones((2, 2)))

    def test_1d_input_treated_as_column(self):
        scaled = MinMaxScaler().fit_transform(np.array([1.0, 2.0, 3.0]))
        assert scaled.shape == (3, 1)

    @settings(max_examples=30, deadline=None)
    @given(matrices)
    def test_roundtrip(self, x):
        scaler = MinMaxScaler().fit(x)
        restored = scaler.inverse_transform(scaler.transform(x))
        np.testing.assert_allclose(restored, x, atol=1e-6, rtol=1e-9)

    def test_transform_new_data_uses_fit_stats(self, rng):
        train = rng.uniform(0, 10, size=(100, 1))
        scaler = MinMaxScaler().fit(train)
        out = scaler.transform(np.array([[20.0]]))
        assert out[0, 0] > 1.0  # out-of-range data extrapolates


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        x = rng.normal(5.0, 3.0, size=(200, 2))
        scaled = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_safe(self):
        x = np.full((10, 1), 3.0)
        scaled = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(scaled, 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))

    @settings(max_examples=30, deadline=None)
    @given(matrices)
    def test_roundtrip(self, x):
        scaler = StandardScaler().fit(x)
        restored = scaler.inverse_transform(scaler.transform(x))
        np.testing.assert_allclose(restored, x, atol=1e-6, rtol=1e-9)
