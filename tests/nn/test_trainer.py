"""Unit tests for the RProp and SGD trainers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.mlp import MLP
from repro.nn.trainer import RPropTrainer, SGDTrainer, mse


def _toy_regression(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 1))
    y = 0.5 + 0.3 * np.sin(2 * np.pi * x)
    return x, y


class TestMse:
    def test_zero_for_identical(self):
        a = np.ones((4, 2))
        assert mse(a, a) == 0.0

    def test_value(self):
        assert mse(np.array([[1.0]]), np.array([[3.0]])) == pytest.approx(4.0)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            mse(np.ones((2, 1)), np.ones((3, 1)))


class TestRPropTrainer:
    def test_loss_decreases(self):
        x, y = _toy_regression()
        net = MLP("1->8->1", rng=np.random.default_rng(0))
        initial = mse(net.forward(x), y)
        result = RPropTrainer(max_epochs=200, seed=0).train(net, x, y)
        assert result.final_loss < initial
        assert result.best_loss < 0.05

    def test_history_recorded(self):
        x, y = _toy_regression(50)
        net = MLP("1->4->1")
        result = RPropTrainer(max_epochs=30, patience=1000).train(net, x, y)
        assert len(result.train_losses) == 30

    def test_early_stop_on_patience(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([[0.0], [1.0]])
        net = MLP("1->2->1")
        result = RPropTrainer(max_epochs=5000, patience=10).train(net, x, y)
        assert result.converged
        assert len(result.train_losses) < 5000

    def test_validation_split(self):
        x, y = _toy_regression(100)
        net = MLP("1->4->1")
        result = RPropTrainer(max_epochs=40, val_fraction=0.25).train(net, x, y)
        assert len(result.val_losses) == len(result.train_losses)

    def test_best_params_restored(self):
        x, y = _toy_regression(100)
        net = MLP("1->8->1", rng=np.random.default_rng(1))
        result = RPropTrainer(max_epochs=150, patience=30, seed=1).train(net, x, y)
        final = mse(net.forward(x), y)
        assert final == pytest.approx(min(result.train_losses), rel=1e-6)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            RPropTrainer(max_epochs=0)
        with pytest.raises(ConfigurationError):
            RPropTrainer(val_fraction=1.0)

    def test_multi_output(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, size=(150, 2))
        y = np.column_stack([x.sum(axis=1), x[:, 0] - x[:, 1]])
        net = MLP("2->6->2", rng=rng)
        result = RPropTrainer(max_epochs=300, patience=50).train(net, x, y)
        assert result.best_loss < 0.05


class TestSGDTrainer:
    def test_loss_decreases(self):
        x, y = _toy_regression()
        net = MLP("1->8->1", rng=np.random.default_rng(0))
        initial = mse(net.forward(x), y)
        result = SGDTrainer(max_epochs=100, learning_rate=0.1, seed=0).train(
            net, x, y
        )
        assert result.final_loss < initial

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            SGDTrainer(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            SGDTrainer(batch_size=0)

    def test_validation_split(self):
        x, y = _toy_regression(80)
        net = MLP("1->4->1")
        result = SGDTrainer(max_epochs=20, val_fraction=0.2).train(net, x, y)
        assert len(result.val_losses) == len(result.train_losses)

    def test_comparable_to_rprop_on_easy_problem(self):
        x, y = _toy_regression(300, seed=3)
        rprop_net = MLP("1->8->1", rng=np.random.default_rng(5))
        sgd_net = rprop_net.copy()
        rprop = RPropTrainer(max_epochs=200, seed=5).train(rprop_net, x, y)
        sgd = SGDTrainer(max_epochs=200, seed=5).train(sgd_net, x, y)
        assert rprop.best_loss < 0.02
        assert sgd.best_loss < 0.05
