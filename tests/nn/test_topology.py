"""Unit tests for the topology search policy."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.topology import enumerate_topologies, search_topology
from repro.nn.trainer import RPropTrainer


class TestEnumerate:
    def test_sorted_by_weight_count(self):
        topologies = enumerate_topologies(3, 1, widths=(2, 4, 8))
        weights = [t.n_weights for t in topologies]
        assert weights == sorted(weights)

    def test_single_layer_only(self):
        topologies = enumerate_topologies(3, 1, widths=(2, 4), max_hidden_layers=1)
        assert all(len(t.sizes) == 3 for t in topologies)
        assert len(topologies) == 2

    def test_two_layer_count(self):
        topologies = enumerate_topologies(3, 1, widths=(2, 4), max_hidden_layers=2)
        # 2 one-layer + 4 two-layer combinations
        assert len(topologies) == 6

    def test_respects_npu_width_cap(self):
        with pytest.raises(ConfigurationError, match="cap of 32"):
            enumerate_topologies(3, 1, widths=(64,))

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            enumerate_topologies(0, 1)
        with pytest.raises(ConfigurationError):
            enumerate_topologies(2, 1, max_hidden_layers=0)


class TestSearch:
    def test_picks_smallest_network_within_slack(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(300, 1))
        y = 2.0 * x + 0.5  # trivially linear
        slack = 1.5
        net, results = search_topology(
            x[:200], y[:200], x[200:], y[200:],
            widths=(1, 2, 4),
            max_hidden_layers=1,
            trainer=RPropTrainer(max_epochs=120, patience=25),
            slack=slack,
        )
        assert len(results) == 3
        best = min(r.val_error for r in results)
        # The selected network is the *first* (smallest) candidate whose
        # error is within the slack bound -- the paper's selection policy.
        expected = next(r for r in results if r.val_error <= slack * best)
        assert net.topology == expected.topology

    def test_all_candidates_scored(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, size=(200, 1))
        y = np.sin(2 * np.pi * x)
        _, results = search_topology(
            x[:150], y[:150], x[150:], y[150:],
            widths=(2, 4),
            max_hidden_layers=1,
            trainer=RPropTrainer(max_epochs=60, patience=15),
        )
        assert all(np.isfinite(r.val_error) for r in results)

    def test_max_candidates_cap(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, size=(100, 1))
        y = x.copy()
        _, results = search_topology(
            x[:80], y[:80], x[80:], y[80:],
            widths=(1, 2, 4),
            max_hidden_layers=2,
            trainer=RPropTrainer(max_epochs=20, patience=5),
            max_candidates=4,
        )
        assert len(results) == 4

    def test_invalid_slack(self):
        with pytest.raises(ConfigurationError):
            search_topology(
                np.zeros((10, 1)), np.zeros((10, 1)),
                np.zeros((5, 1)), np.zeros((5, 1)),
                slack=0.5,
            )
