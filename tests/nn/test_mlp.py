"""Unit tests for the MLP and topology parsing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.mlp import MLP, Topology


class TestTopology:
    def test_parse(self):
        topo = Topology.parse("6->8->4->1")
        assert topo.sizes == (6, 8, 4, 1)
        assert topo.n_inputs == 6
        assert topo.n_outputs == 1
        assert topo.hidden_sizes == (8, 4)

    def test_str_roundtrip(self):
        spec = "18->32->2->2"
        assert str(Topology.parse(spec)) == spec

    def test_weight_count(self):
        topo = Topology.parse("2->3->1")
        # (2+1)*3 + (3+1)*1 = 13
        assert topo.n_weights == 13

    def test_multiply_adds(self):
        topo = Topology.parse("2->3->1")
        assert topo.n_multiply_adds == 2 * 3 + 3 * 1

    def test_n_neurons_excludes_inputs(self):
        assert Topology.parse("9->8->1").n_neurons == 9

    def test_malformed_spec(self):
        with pytest.raises(ConfigurationError):
            Topology.parse("6->x->1")

    def test_too_few_layers(self):
        with pytest.raises(ConfigurationError):
            Topology((4,))

    def test_nonpositive_layer(self):
        with pytest.raises(ConfigurationError):
            Topology((4, 0, 1))


class TestMLP:
    def test_forward_shapes(self, rng):
        net = MLP("3->5->2", rng=rng)
        out = net.forward(rng.normal(size=(7, 3)))
        assert out.shape == (7, 2)

    def test_accepts_spec_string_and_tuple(self):
        assert MLP("2->2->1").topology == MLP((2, 2, 1)).topology

    def test_wrong_input_width_raises(self, rng):
        net = MLP("3->2->1")
        with pytest.raises(ConfigurationError):
            net.forward(rng.normal(size=(5, 4)))

    def test_deterministic_given_seed(self):
        a = MLP("2->4->1", rng=np.random.default_rng(7))
        b = MLP("2->4->1", rng=np.random.default_rng(7))
        x = np.random.default_rng(0).normal(size=(10, 2))
        np.testing.assert_array_equal(a(x), b(x))

    def test_linear_output_not_saturated(self, rng):
        net = MLP("1->2->1", rng=rng)
        # Force large weights in the output layer: linear output can exceed 1.
        net.weights[-1][:] = 100.0
        out = net.forward(np.array([[0.5]]))
        assert abs(out[0, 0]) > 1.0

    def test_flat_params_roundtrip(self, rng):
        net = MLP("3->4->2", rng=rng)
        flat = net.get_flat_params()
        assert flat.shape == (net.topology.n_weights,)
        clone = MLP("3->4->2")
        clone.set_flat_params(flat)
        x = rng.normal(size=(6, 3))
        np.testing.assert_allclose(clone(x), net(x))

    def test_set_flat_params_wrong_size(self):
        net = MLP("2->2->1")
        with pytest.raises(ConfigurationError):
            net.set_flat_params(np.zeros(3))

    def test_copy_is_independent(self, rng):
        net = MLP("2->3->1", rng=rng)
        clone = net.copy()
        clone.weights[0][:] = 0.0
        assert not np.array_equal(net.weights[0], clone.weights[0])

    def test_forward_trace_layers(self, rng):
        net = MLP("2->3->4->1", rng=rng)
        out, trace = net.forward_trace(rng.normal(size=(5, 2)))
        assert len(trace) == 4  # input + 3 layers
        np.testing.assert_array_equal(trace[-1], out)

    def test_hidden_sigmoid_bounded(self, rng):
        net = MLP("2->3->1", rng=rng)
        _, trace = net.forward_trace(rng.normal(size=(50, 2)) * 100)
        hidden = trace[1]
        assert np.all(hidden >= 0.0) and np.all(hidden <= 1.0)

    def test_activation_for_layer(self):
        net = MLP("2->3->1")
        assert net.activation_for_layer(0).name == "sigmoid"
        assert net.activation_for_layer(net.n_layers - 1).name == "linear"


class TestForwardOutBuffers:
    """The preallocated-buffer path must be numerically identical
    (<= 1e-12) to the allocating path — it backs the serving fast path."""

    def test_out_matches_allocating_forward(self, rng):
        net = MLP("4->8->6->2", rng=rng)
        x = rng.normal(size=(32, 4)) * 10
        expected = net.forward(x)
        out = np.full((32, 2), np.nan)
        result = net.forward(x, out=out)
        assert result is out
        np.testing.assert_allclose(result, expected, atol=1e-12, rtol=0)

    def test_scratch_matches_allocating_forward(self, rng):
        net = MLP("4->8->6->2", rng=rng)
        x = rng.normal(size=(16, 4)) * 5
        expected = net.forward(x)
        scratch = [np.empty((16, 8)), np.empty((16, 6))]
        out = np.empty((16, 2))
        result = net.forward(x, out=out, scratch=scratch)
        np.testing.assert_allclose(result, expected, atol=1e-12, rtol=0)

    def test_buffers_are_reusable_across_batches(self, rng):
        net = MLP("3->5->1", rng=rng)
        scratch = [np.empty((10, 5))]
        out = np.empty((10, 1))
        for seed in range(4):
            x = np.random.default_rng(seed).normal(size=(10, 3))
            np.testing.assert_allclose(
                net.forward(x, out=out, scratch=scratch),
                net.forward(x),
                atol=1e-12,
                rtol=0,
            )

    def test_tanh_and_relu_hidden_layers(self, rng):
        for act in ("tanh", "relu"):
            net = MLP("3->6->2", hidden_activation=act, rng=rng)
            x = rng.normal(size=(12, 3)) * 3
            out = np.empty((12, 2))
            scratch = [np.empty((12, 6))]
            np.testing.assert_allclose(
                net.forward(x, out=out, scratch=scratch),
                net.forward(x),
                atol=1e-12,
                rtol=0,
            )
