"""Tests for the golden-number regression harness."""

import pytest

from repro.errors import ConfigurationError
from repro.eval.experiments import HeadlineSummary
from repro.eval.golden import GOLDEN_HEADLINE, GoldenBand, check_headline


def _summary(**overrides):
    defaults = dict(
        mean_unchecked_error=0.166,
        mean_rumba_error=0.098,
        error_reduction=1.69,
        npu_energy_savings=3.94,
        rumba_energy_savings=2.27,
        npu_speedup=2.25,
        rumba_speedup=2.25,
    )
    defaults.update(overrides)
    return HeadlineSummary(**defaults)


class TestGoldenBand:
    def test_admits_within_tolerance(self):
        band = GoldenBand(2.0, 0.25)
        assert band.admits(2.0)
        assert band.admits(2.4)
        assert band.admits(1.6)
        assert not band.admits(2.6)
        assert not band.admits(1.4)

    def test_zero_expected_uses_absolute(self):
        band = GoldenBand(0.0, 0.1)
        assert band.admits(0.05)
        assert not band.admits(0.2)

    def test_describe_mentions_band(self):
        text = GoldenBand(2.0, 0.25).describe("speedup", 3.0)
        assert "speedup" in text and "1.5" in text and "2.5" in text


class TestCheckHeadline:
    def test_recorded_values_pass(self):
        assert check_headline(_summary()) == []

    def test_drift_flagged(self):
        violations = check_headline(_summary(npu_energy_savings=10.0))
        assert len(violations) == 1
        assert "npu_energy_savings" in violations[0]

    def test_multiple_drifts(self):
        violations = check_headline(
            _summary(error_reduction=0.5, rumba_speedup=0.5)
        )
        assert len(violations) == 2

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            check_headline(_summary(), golden={"bogus": GoldenBand(1.0)})

    def test_empty_golden_rejected(self):
        with pytest.raises(ConfigurationError):
            check_headline(_summary(), golden={})

    @pytest.mark.slow
    def test_live_headline_within_golden_bands(self):
        """The real contract: a fresh full-suite run stays in band.

        This trains every benchmark (cached across the session); it is the
        single test that guards the whole calibration.
        """
        violations = check_headline(seed=0)
        assert violations == [], violations
