"""Tests for the per-figure experiment drivers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.eval.experiments import (
    cpu_activity_case_study,
    energy_speedup_table,
    energy_vs_toq,
    error_vs_fixed_sweep,
    gaussian_case_study,
    geomean,
    prediction_time_table,
    quality_target_analysis,
)
from repro.predictors.training import SCHEME_NAMES


class TestGeomean:
    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geomean([1.0, 0.0])
        with pytest.raises(ConfigurationError):
            geomean([])


class TestFig10Sweep:
    def test_all_schemes_swept(self, ik2j_evaluation):
        sweep = error_vs_fixed_sweep(ik2j_evaluation, fractions=[0.0, 0.3, 1.0])
        assert set(sweep) == set(SCHEME_NAMES)
        for curve in sweep.values():
            assert curve.shape == (3,)
            assert curve[0] == pytest.approx(ik2j_evaluation.unchecked_error)
            assert curve[-1] == pytest.approx(0.0, abs=1e-12)

    def test_ideal_lower_bounds_everything(self, ik2j_evaluation):
        fractions = np.linspace(0, 1, 11)
        sweep = error_vs_fixed_sweep(ik2j_evaluation, fractions)
        for scheme, curve in sweep.items():
            assert np.all(sweep["Ideal"] <= curve + 1e-12), scheme

    def test_tree_close_to_ideal_at_30pct(self, ik2j_evaluation):
        """The paper's Sec. 5.1 inversek2j observation: tree ~ Ideal,
        both far better than Random."""
        sweep = error_vs_fixed_sweep(ik2j_evaluation, fractions=[0.3])
        assert sweep["treeErrors"][0] < sweep["Random"][0]
        assert sweep["treeErrors"][0] <= sweep["Ideal"][0] * 1.5


class TestFigs11To13:
    def test_all_quantities_present(self, ik2j_evaluation):
        analyses = quality_target_analysis(ik2j_evaluation, target_error=0.10)
        assert set(analyses) == set(SCHEME_NAMES)
        for analysis in analyses.values():
            assert analysis.achieved_error <= 0.10 + 1e-12
            assert 0.0 <= analysis.false_positive_fraction <= 1.0
            assert analysis.relative_coverage >= 0.0

    def test_ideal_properties(self, ik2j_evaluation):
        analyses = quality_target_analysis(ik2j_evaluation)
        ideal = analyses["Ideal"]
        assert ideal.false_positive_fraction == 0.0
        assert ideal.relative_coverage == pytest.approx(1.0)
        # Ideal needs the fewest fixes of all schemes (Fig. 12).
        for scheme, analysis in analyses.items():
            assert ideal.n_fixed <= analysis.n_fixed, scheme

    def test_tree_beats_random_on_fixes(self, ik2j_evaluation):
        analyses = quality_target_analysis(ik2j_evaluation)
        assert analyses["treeErrors"].n_fixed < analyses["Random"].n_fixed


class TestFigs14And15:
    def test_rows_cover_npu_and_schemes(self, ik2j_evaluation):
        rows = energy_speedup_table(ik2j_evaluation)
        names = [r.scheme for r in rows]
        assert names[0] == "NPU"
        assert set(names[1:]) == set(SCHEME_NAMES)

    def test_unchecked_npu_best_energy(self, ik2j_evaluation):
        rows = {r.scheme: r for r in energy_speedup_table(ik2j_evaluation)}
        for scheme in SCHEME_NAMES:
            assert rows["NPU"].energy_savings >= rows[scheme].energy_savings

    def test_checked_schemes_cost_energy_not_speed(self, ik2j_evaluation):
        """Rumba's headline: error checking costs energy but the overlap
        keeps the speedup in the accelerator's band."""
        rows = {r.scheme: r for r in energy_speedup_table(ik2j_evaluation)}
        tree = rows["treeErrors"]
        assert tree.energy_savings < rows["NPU"].energy_savings
        assert tree.speedup > 1.0

    def test_ideal_cheapest_of_fixing_schemes(self, ik2j_evaluation):
        rows = {r.scheme: r for r in energy_speedup_table(ik2j_evaluation)}
        for scheme in ("Random", "Uniform", "EMA"):
            assert rows["Ideal"].energy_savings >= rows[scheme].energy_savings


class TestFig16:
    def test_energy_grows_with_quality_demand(self, fft_evaluation):
        targets = [0.02, 0.06, 0.10]
        curves = energy_vs_toq(fft_evaluation, target_errors=targets)
        for scheme, energies in curves.items():
            # Stricter targets (smaller error) need more fixes => more energy.
            assert energies[0] >= energies[-1] - 1e-12, scheme

    def test_ideal_lower_bounds_fixing_schemes(self, fft_evaluation):
        targets = [0.02, 0.05, 0.10]
        curves = energy_vs_toq(
            fft_evaluation, target_errors=targets,
            schemes=("Ideal", "Random", "treeErrors"),
        )
        assert np.all(curves["Ideal"] <= curves["Random"] + 1e-12)


class TestFig17:
    def test_checkers_faster_than_npu(self, ik2j_evaluation):
        times = prediction_time_table(ik2j_evaluation)
        assert set(times) == {"linearErrors", "treeErrors"}
        for value in times.values():
            assert 0.0 < value < 1.0


class TestHeadlineSummary:
    def test_subset_structure(self):
        from repro.eval.experiments import headline_summary

        summary = headline_summary(benchmarks=["fft", "inversek2j"], seed=0)
        assert set(summary.per_app) == {"fft", "inversek2j"}
        for d in summary.per_app.values():
            assert set(d) >= {
                "unchecked_error", "npu_unchecked_error", "rumba_error",
                "fix_fraction", "npu_energy_savings", "rumba_energy_savings",
                "npu_speedup", "rumba_speedup",
            }
        assert summary.error_reduction > 1.0
        assert summary.mean_rumba_error <= summary.mean_unchecked_error

    def test_reduction_is_ratio_of_means(self):
        from repro.eval.experiments import headline_summary

        summary = headline_summary(benchmarks=["fft"], seed=0)
        assert summary.error_reduction == pytest.approx(
            summary.mean_unchecked_error / summary.mean_rumba_error
        )


class TestGaussianCaseStudy:
    def test_eep_beats_evp(self):
        """Sec. 3.2: predicting errors directly is more accurate than
        predicting values and differencing (paper: 2.5 vs 1)."""
        study = gaussian_case_study(seed=0)
        assert study.eep_distance < study.evp_distance
        assert study.eep_advantage > 1.5

    def test_errors_concentrated(self):
        """Fig. 5: approximation errors concentrate on certain inputs."""
        study = gaussian_case_study(seed=0)
        high = study.errors > np.percentile(study.errors, 90)
        # The high-error inputs span a small part of the input range.
        spread = np.ptp(study.inputs[high]) / np.ptp(study.inputs)
        assert spread < 0.8


class TestFig18:
    def test_case_study_consistent(self):
        study = cpu_activity_case_study(n_elements=200, seed=0)
        assert study.percentage_difference.shape == (200,)
        assert study.recovery_bits.shape == (200,)
        assert study.fix_fraction == pytest.approx(
            study.recovery_bits.mean()
        )
        if study.fix_fraction > 0:
            assert study.max_keepup_speedup == pytest.approx(
                1.0 / study.fix_fraction
            )
        assert study.cpu_trace.size > 0

    def test_threshold_separates_fixed_elements(self):
        study = cpu_activity_case_study(n_elements=200, seed=0)
        fixed = study.percentage_difference[study.recovery_bits]
        unfixed = study.percentage_difference[~study.recovery_bits]
        if fixed.size and unfixed.size:
            assert fixed.min() >= study.threshold
            assert unfixed.max() <= study.threshold
