"""Tests for the automated experiment report generator."""

import pytest

from repro.errors import ConfigurationError
from repro.eval.report import generate_report


@pytest.fixture(scope="module")
def fft_report():
    return generate_report(benchmarks=["fft"], seed=0)


class TestGenerateReport:
    def test_contains_all_sections(self, fft_report):
        for heading in (
            "## Headline",
            "## Elements re-executed",
            "## False positives",
            "## Energy savings and speedup",
            "## Checker time relative to one NPU invocation",
            "## EVP vs EEP",
        ):
            assert heading in fft_report

    def test_markdown_tables_well_formed(self, fft_report):
        lines = fft_report.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("|") and set(line) <= {"|", "-", " "}:
                # Separator row: the header above must have the same width.
                header_cols = lines[i - 1].count("|")
                assert line.count("|") == header_cols

    def test_benchmark_rows_present(self, fft_report):
        assert "| fft |" in fft_report

    def test_scheme_columns_present(self, fft_report):
        assert "treeErrors" in fft_report and "linearErrors" in fft_report

    def test_subset_and_full_names(self):
        with pytest.raises(ConfigurationError):
            generate_report(benchmarks=[])

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "report.md"
        assert main(["report", "--apps", "fft", "--out", str(out)]) == 0
        text = out.read_text()
        assert "## Headline" in text
        captured = capsys.readouterr().out
        assert "wrote" in captured
