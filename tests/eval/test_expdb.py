"""Experiment-DB round-trips: recording runs, reading them back, the
metric flattener, and the report section regenerated from the DB."""

import json
import sqlite3

import pytest

from repro.errors import ConfigurationError
from repro.eval.expdb import ExperimentDB, default_db_path, flatten_metrics

REPORT = {
    "bench": "backend_scaling",
    "app": "fft",
    "quick": True,
    "host": {"cpu_count": 8},
    "load": {"n_requests": 32},
    "results": [
        {"backend": "thread", "workers": 1, "requests_per_s": 120.5,
         "p50_ms": 4.0},
        {"backend": "process", "workers": 1, "requests_per_s": 150.25,
         "p50_ms": 3.5},
    ],
}


class TestFlattenMetrics:
    def test_numeric_leaves_with_dotted_paths(self):
        flat = dict(flatten_metrics(REPORT))
        assert flat["host.cpu_count"] == 8.0
        assert flat["load.n_requests"] == 32.0
        assert flat["results.0.requests_per_s"] == 120.5
        assert flat["results.1.p50_ms"] == 3.5

    def test_booleans_and_strings_excluded(self):
        flat = dict(flatten_metrics(REPORT))
        assert "quick" not in flat  # a flag, not a measurement
        assert "bench" not in flat
        assert "app" not in flat

    def test_bare_scalar(self):
        assert list(flatten_metrics(7.5)) == [("value", 7.5)]


class TestExperimentDB:
    def test_record_and_read_back(self, tmp_path):
        path = str(tmp_path / "experiments.sqlite")
        with ExperimentDB(path) as db:
            run_id = db.record_run("backend_scaling", REPORT, quick=True)
            assert db.benches() == ["backend_scaling"]
            runs = db.runs("backend_scaling")
            assert len(runs) == 1 and runs[0]["id"] == run_id
            assert runs[0]["quick"] is True
            latest = db.latest_report("backend_scaling")
            assert latest is not None
            latest_id, report = latest
            assert latest_id == run_id
            assert report == json.loads(json.dumps(REPORT))

    def test_latest_report_is_newest_run(self, tmp_path):
        path = str(tmp_path / "experiments.sqlite")
        with ExperimentDB(path) as db:
            db.record_run("b", {"v": 1}, created_at="2026-01-01T00:00:00Z")
            newer = db.record_run("b", {"v": 2},
                                  created_at="2026-01-02T00:00:00Z")
            run_id, report = db.latest_report("b")
            assert run_id == newer
            assert report == {"v": 2}
        assert ExperimentDB(path).latest_report("nope") is None

    def test_metrics_and_history(self, tmp_path):
        path = str(tmp_path / "experiments.sqlite")
        with ExperimentDB(path) as db:
            run_id = db.record_run("backend_scaling", REPORT)
            metrics = db.metrics(run_id)
            assert metrics["results.0.requests_per_s"] == 120.5
            filtered = db.metrics(run_id, like="results.%.p50_ms")
            assert set(filtered) == {"results.0.p50_ms", "results.1.p50_ms"}
            db.record_run(
                "backend_scaling",
                {"results": [{"requests_per_s": 99.0}]},
            )
            history = db.metric_history(
                "backend_scaling", "results.0.requests_per_s"
            )
            assert [value for _, value in history] == [120.5, 99.0]

    def test_configs_capture_top_level_scalars(self, tmp_path):
        path = str(tmp_path / "experiments.sqlite")
        with ExperimentDB(path) as db:
            run_id = db.record_run(
                "b", REPORT, configs={"extra": "knob"}
            )
        rows = dict(
            sqlite3.connect(path).execute(
                "SELECT key, value FROM configs WHERE run_id = ?", (run_id,)
            ).fetchall()
        )
        assert json.loads(rows["app"]) == "fft"
        assert json.loads(rows["quick"]) is True
        assert json.loads(rows["extra"]) == "knob"
        assert "results" not in rows  # nested documents are not configs

    def test_empty_bench_name_rejected(self, tmp_path):
        with ExperimentDB(str(tmp_path / "db.sqlite")) as db:
            with pytest.raises(ConfigurationError):
                db.record_run("", {})

    def test_default_path_env_override(self, tmp_path, monkeypatch):
        monkeypatch.delenv("RUMBA_EXPDB", raising=False)
        assert default_db_path() == "experiments.sqlite"
        monkeypatch.setenv("RUMBA_EXPDB", str(tmp_path / "other.sqlite"))
        assert default_db_path() == str(tmp_path / "other.sqlite")


class TestReportSection:
    def test_expdb_section_renders_latest_runs(self, tmp_path):
        from repro.eval.report import _expdb_sections

        path = str(tmp_path / "experiments.sqlite")
        with ExperimentDB(path) as db:
            db.record_run("backend_scaling", REPORT, quick=True)
        text = "\n".join(_expdb_sections(path))
        assert "## Serving benchmarks (experiment DB)" in text
        assert "### backend_scaling" in text
        # Stored reports round-trip with sorted keys, so the derived
        # table headers come back alphabetized.
        assert "| backend | p50_ms | requests_per_s | workers |" in text
        assert "120.500" in text  # _md_table's float formatting

    def test_expdb_section_with_empty_db(self, tmp_path):
        from repro.eval.report import _expdb_sections

        path = str(tmp_path / "empty.sqlite")
        text = "\n".join(_expdb_sections(path))
        assert "No runs recorded yet" in text
