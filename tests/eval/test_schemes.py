"""Tests for the shared benchmark-evaluation material."""

import numpy as np
import pytest

from repro.eval.schemes import evaluate_benchmark
from repro.predictors.training import SCHEME_NAMES


class TestEvaluateBenchmark:
    def test_all_schemes_scored(self, ik2j_evaluation):
        ev = ik2j_evaluation
        assert set(ev.scores) == set(SCHEME_NAMES)
        for scores in ev.scores.values():
            assert scores.shape == (ev.n_elements,)
            assert np.all(np.isfinite(scores))

    def test_errors_match_outputs(self, ik2j_evaluation):
        ev = ik2j_evaluation
        recomputed = ev.app.element_errors(ev.approx, ev.exact)
        np.testing.assert_allclose(ev.errors, recomputed)

    def test_unchecked_error_is_mean_element_error(self, ik2j_evaluation):
        """For every Table 1 metric the app error == mean element error,
        which is what the O(n log n) sweep machinery relies on."""
        ev = ik2j_evaluation
        assert ev.unchecked_error == pytest.approx(float(ev.errors.mean()))

    def test_ideal_scores_are_errors(self, ik2j_evaluation):
        ev = ik2j_evaluation
        np.testing.assert_array_equal(ev.scores["Ideal"], ev.errors)

    def test_npu_backend_uses_bigger_topology(self, ik2j_evaluation):
        ev = ik2j_evaluation
        assert ev.npu_backend.topology == ev.app.npu_topology
        assert ev.backend.topology == ev.app.rumba_topology

    def test_npu_more_accurate_than_rumba_accelerator(self, ik2j_evaluation):
        ev = ik2j_evaluation
        assert ev.npu_unchecked_error < ev.unchecked_error

    def test_test_cap_respected(self, ik2j_evaluation):
        assert ik2j_evaluation.n_elements <= 4000

    def test_cache_returns_same_object(self):
        a = evaluate_benchmark("fft", seed=0, n_test_cap=4000)
        b = evaluate_benchmark("fft", seed=0, n_test_cap=4000)
        assert a is b
