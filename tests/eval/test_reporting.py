"""Unit tests for the bench reporting helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.eval.reporting import banner, format_percent, format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.500" in text
        assert "bb" in text

    def test_title(self):
        text = format_table(["x"], [["1"]], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_row_width_validated(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeries:
    def test_columns_per_series(self):
        text = format_series(
            "x", [0.0, 1.0], {"s1": [10.0, 20.0], "s2": [30.0, 40.0]}
        )
        assert "s1" in text and "s2" in text
        assert "10.000" in text and "40.000" in text


class TestSmallHelpers:
    def test_percent(self):
        assert format_percent(0.123) == "12.3%"
        assert format_percent(0.5, digits=0) == "50%"

    def test_banner_contains_title(self):
        assert "Fig. 10" in banner("Fig. 10")
