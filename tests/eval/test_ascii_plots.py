"""Tests for the terminal plotting helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.eval.ascii_plots import bar_chart, line_chart, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_rejects_empty_and_nonfinite(self):
        with pytest.raises(ConfigurationError):
            sparkline([])
        with pytest.raises(ConfigurationError):
            sparkline([1.0, np.nan])


class TestBarChart:
    def test_longest_bar_for_largest_value(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[1].count("█") > lines[0].count("█")

    def test_values_annotated(self):
        chart = bar_chart(["x"], [3.14159], unit="x")
        assert "3.14x" in chart

    def test_title(self):
        chart = bar_chart(["x"], [1.0], title="Fig")
        assert chart.splitlines()[0] == "Fig"

    def test_zero_values_ok(self):
        chart = bar_chart(["a", "b"], [0.0, 0.0])
        assert "0.00" in chart

    def test_validations(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            bar_chart([], [])
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [-1.0])


class TestLineChart:
    def test_contains_all_markers(self):
        chart = line_chart(
            [0, 1, 2], {"up": [0, 1, 2], "down": [2, 1, 0]}, height=5,
            width=12,
        )
        assert "o" in chart and "+" in chart
        assert "o=up" in chart and "+=down" in chart

    def test_extremes_on_correct_rows(self):
        chart = line_chart([0, 1], {"s": [0.0, 10.0]}, height=4, width=8)
        rows = [l for l in chart.splitlines() if "|" in l]
        assert "o" in rows[0]    # max lands on the top row
        assert "o" in rows[-1]   # min lands on the bottom row

    def test_axis_labels_present(self):
        chart = line_chart([2.0, 4.0], {"s": [1.0, 3.0]}, height=3, width=10)
        assert "2.000" in chart and "4.000" in chart
        assert "3.000" in chart and "1.000" in chart

    def test_validations(self):
        with pytest.raises(ConfigurationError):
            line_chart([0, 1], {}, height=3, width=5)
        with pytest.raises(ConfigurationError):
            line_chart([0, 1], {"s": [1.0]}, height=3, width=5)
        with pytest.raises(ConfigurationError):
            line_chart([0, 1], {"s": [1.0, np.inf]}, height=3, width=5)
        with pytest.raises(ConfigurationError):
            line_chart([0, 1], {"s": [0, 1]}, height=1, width=5)
