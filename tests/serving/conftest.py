"""Serving-layer fixtures: one trained prototype shared by every test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import prepare_system


@pytest.fixture(scope="session")
def fft_prototype():
    return prepare_system("fft", scheme="treeErrors", seed=0)


@pytest.fixture(scope="session")
def fft_input_pool(fft_prototype):
    rng = np.random.default_rng(42)
    return np.atleast_2d(fft_prototype.app.test_inputs(rng))
