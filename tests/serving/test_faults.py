"""Unit tests for the chaos harness (config parsing, fault channels,
frame corruption detection)."""

import random
import struct

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServingError, WorkerCrashError
from repro.serving import ChaosConfig, ChaosMonkey, InjectedFault
from repro.serving.faults import corrupt_next_frame
from repro.serving.shm import FRAME_BATCH, ShmRing


class TestChaosConfig:
    def test_parse_full_spec(self):
        config = ChaosConfig.parse(
            "kill=2,fail=0.05,drop=0.1,delay=0.005,corrupt=0.01,seed=7"
        )
        assert config.kill_rate == 2.0
        assert config.fail_prob == 0.05
        assert config.control_drop_prob == 0.1
        assert config.control_delay_s == 0.005
        assert config.control_corrupt_prob == 0.01
        assert config.seed == 7
        assert config.enabled

    def test_parse_accepts_field_names_and_whitespace(self):
        config = ChaosConfig.parse(" kill_rate = 1 , fail = 0.5 ")
        assert config.kill_rate == 1.0
        assert config.fail_prob == 0.5

    def test_empty_spec_enables_nothing(self):
        assert not ChaosConfig.parse("").enabled
        assert not ChaosConfig().enabled
        assert not ChaosConfig(seed=42).enabled  # seed alone is not chaos

    def test_parse_rejects_unknown_keys_and_bad_values(self):
        with pytest.raises(ConfigurationError, match="unknown chaos key"):
            ChaosConfig.parse("explode=1")
        with pytest.raises(ConfigurationError, match="bad chaos value"):
            ChaosConfig.parse("kill=lots")
        with pytest.raises(ConfigurationError, match="key=value"):
            ChaosConfig.parse("kill")

    def test_validation_bounds(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(fail_prob=1.5)
        with pytest.raises(ConfigurationError):
            ChaosConfig(kill_rate=-1)
        with pytest.raises(ConfigurationError):
            ChaosConfig(control_delay_s=-0.1)


class TestInjectedFault:
    def test_is_retryable_worker_crash(self):
        # The server's retry classification keys on WorkerCrashError:
        # injected faults must ride the same path as real crashes.
        assert issubclass(InjectedFault, WorkerCrashError)
        assert issubclass(InjectedFault, ServingError)

    def test_maybe_fail_counts_and_raises(self):
        monkey = ChaosMonkey(ChaosConfig(fail_prob=1.0, seed=0))
        with pytest.raises(InjectedFault, match="dispatch"):
            monkey.maybe_fail()
        with pytest.raises(InjectedFault, match="w3"):
            monkey.maybe_fail(where="w3")
        assert monkey.injected_faults == 2

    def test_maybe_fail_never_fires_at_zero(self):
        monkey = ChaosMonkey(ChaosConfig(fail_prob=0.0, seed=0))
        for _ in range(100):
            monkey.maybe_fail()
        assert monkey.injected_faults == 0


class TestControlFilter:
    def test_drop_returns_none(self):
        monkey = ChaosMonkey(ChaosConfig(control_drop_prob=1.0, seed=0))
        assert monkey.filter_control(b"\x00" * 8) is None
        assert monkey.dropped_controls == 1

    def test_corrupt_flips_exactly_one_byte(self):
        monkey = ChaosMonkey(ChaosConfig(control_corrupt_prob=1.0, seed=0))
        original = struct.pack("<d", 1.5)
        mangled = monkey.filter_control(original)
        assert mangled is not None and mangled != original
        assert len(mangled) == len(original)
        assert sum(a != b for a, b in zip(mangled, original)) == 1
        assert monkey.corrupted_controls == 1

    def test_passthrough_when_quiet(self):
        monkey = ChaosMonkey(ChaosConfig(seed=0))
        payload = b"\x01\x02\x03\x04\x05\x06\x07\x08"
        assert monkey.filter_control(payload) == payload
        assert monkey.summary() == {
            "kills": 0, "injected_faults": 0, "dropped_controls": 0,
            "delayed_controls": 0, "corrupted_controls": 0,
        }

    def test_kill_without_pool_is_noop(self):
        monkey = ChaosMonkey(ChaosConfig(kill_rate=5.0, seed=0))
        assert not monkey.kill_one_worker()
        assert monkey.kills == 0


class TestFrameCorruption:
    def test_corrupted_frame_is_detected_not_decoded(self):
        # The transport must *detect* a torn frame (bad magic) rather
        # than hand garbage rows to the worker.
        ring = ShmRing(capacity_bytes=1 << 12)
        try:
            assert ring.try_write(FRAME_BATCH, seq=1, payload=np.ones((2, 3)))
            assert corrupt_next_frame(ring, random.Random(0))
            with pytest.raises(ServingError, match="bad frame magic"):
                ring.try_read()
        finally:
            ring.close()
            ring.unlink()

    def test_empty_ring_cannot_be_corrupted(self):
        ring = ShmRing(capacity_bytes=1 << 12)
        try:
            assert not corrupt_next_frame(ring)
        finally:
            ring.close()
            ring.unlink()
