"""Unit tests for the shared-memory ring transport (frame round trips,
wraparound, capacity behaviour)."""

import multiprocessing as mp
import os
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServingError
from repro.serving.shm import (
    FRAME_BATCH,
    FRAME_RESULT,
    FRAME_STOP,
    ShmRing,
)


@pytest.fixture()
def ring():
    ring = ShmRing(capacity_bytes=1 << 12)
    yield ring
    ring.close()
    ring.unlink()


class TestFraming:
    def test_round_trip_payload_and_extra(self, ring):
        payload = np.arange(30, dtype=float).reshape(5, 6) * 0.5
        assert ring.try_write(FRAME_BATCH, seq=42, payload=payload,
                              extra=b"metadata")
        frame = ring.try_read()
        assert frame.kind == FRAME_BATCH
        assert frame.seq == 42
        assert frame.extra == b"metadata"
        assert frame.payload.shape == (5, 6)
        assert frame.payload.dtype == np.float64
        np.testing.assert_array_equal(frame.payload, payload)

    def test_empty_ring_reads_none(self, ring):
        assert ring.try_read() is None

    def test_control_frame_without_payload(self, ring):
        assert ring.try_write(FRAME_STOP)
        frame = ring.try_read()
        assert frame.kind == FRAME_STOP
        assert frame.payload is None
        assert frame.extra == b""

    def test_fifo_order_preserved(self, ring):
        for seq in range(5):
            assert ring.try_write(FRAME_RESULT, seq=seq,
                                  payload=np.full((1, 2), float(seq)))
        seqs = [ring.try_read().seq for _ in range(5)]
        assert seqs == [0, 1, 2, 3, 4]
        assert ring.try_read() is None

    def test_payload_must_be_2d(self, ring):
        with pytest.raises(ConfigurationError, match="2-D"):
            ring.try_write(FRAME_BATCH, payload=np.arange(4.0))

    def test_unaligned_extra_is_padded_not_corrupted(self, ring):
        # 3-byte extra forces padding; the next frame must still decode.
        assert ring.try_write(FRAME_RESULT, seq=1, extra=b"abc")
        assert ring.try_write(FRAME_RESULT, seq=2, extra=b"defgh")
        assert ring.try_read().extra == b"abc"
        assert ring.try_read().extra == b"defgh"


class TestCapacity:
    def test_full_ring_rejects_then_accepts_after_drain(self, ring):
        payload = np.zeros((16, 8))  # 1 KiB + header per frame
        written = 0
        while ring.try_write(FRAME_BATCH, seq=written, payload=payload):
            written += 1
        assert written >= 2  # the 4 KiB ring holds a few frames
        assert not ring.try_write(FRAME_BATCH, seq=99, payload=payload)
        assert ring.try_read().seq == 0
        assert ring.try_write(FRAME_BATCH, seq=99, payload=payload)

    def test_oversized_frame_raises_instead_of_spinning(self, ring):
        with pytest.raises(ServingError, match="cannot ever fit"):
            ring.try_write(FRAME_BATCH, payload=np.zeros((1024, 8)))

    def test_wraparound_preserves_content(self, ring):
        # Drive enough traffic through a small ring that frames straddle
        # the physical end many times over.
        rng = np.random.default_rng(0)
        for seq in range(200):
            payload = rng.normal(size=(7, 3))
            assert ring.try_write(FRAME_BATCH, seq=seq, payload=payload,
                                  extra=bytes([seq % 251]))
            frame = ring.try_read()
            assert frame.seq == seq
            np.testing.assert_array_equal(frame.payload, payload)
            assert frame.extra == bytes([seq % 251])
        assert ring.used_bytes() == 0

    def test_interleaved_write_read_tracks_usage(self, ring):
        payload = np.ones((4, 4))
        per_frame = ring.frame_bytes(payload=payload)
        ring.try_write(FRAME_BATCH, payload=payload)
        ring.try_write(FRAME_BATCH, payload=payload)
        assert ring.used_bytes() == 2 * per_frame
        ring.try_read()
        assert ring.used_bytes() == per_frame


class TestZeroCopyRead:
    def test_view_matches_and_advance_releases(self, ring):
        payload = np.arange(24.0).reshape(4, 6)
        assert ring.try_write(FRAME_BATCH, seq=9, payload=payload)
        used = ring.used_bytes()
        frame = ring.try_read(zero_copy=True)
        np.testing.assert_array_equal(frame.payload, payload)
        # The cursor has NOT advanced yet: the view pins its ring bytes.
        assert ring.used_bytes() == used
        assert frame.span == used
        ring.advance(frame)
        assert ring.used_bytes() == 0

    def test_view_aliases_ring_memory_until_advance(self, ring):
        assert ring.try_write(FRAME_BATCH, seq=0, payload=np.zeros((2, 2)))
        frame = ring.try_read(zero_copy=True)
        # A second producer write after advance may reuse these bytes;
        # until then the view reflects ring memory (write-through proves
        # aliasing rather than a hidden copy).
        addr = frame.payload.__array_interface__["data"][0]
        buf_addr = np.frombuffer(
            ring._shm.buf, dtype=np.uint8
        ).__array_interface__["data"][0]
        assert buf_addr <= addr < buf_addr + ring._shm.size
        ring.advance(frame)

    def test_wrapped_payload_is_gathered_and_survives(self, ring):
        # Force the payload to straddle the physical end: fill most of the
        # ring, drain, then write a frame starting near the edge.
        filler = np.ones((40, 8))  # 2560 B payload in a 4 KiB ring
        assert ring.try_write(FRAME_BATCH, seq=0, payload=filler)
        ring.try_read()
        payload = np.arange(160.0).reshape(20, 8)
        assert ring.try_write(FRAME_BATCH, seq=1, payload=payload)
        frame = ring.try_read(zero_copy=True)
        np.testing.assert_array_equal(frame.payload, payload)
        # Wrapped frames come back as owned arrays: still valid after
        # advance and after the producer reuses the ring.
        ring.advance(frame)
        assert ring.try_write(FRAME_BATCH, seq=2,
                              payload=np.full((20, 8), 7.0))
        np.testing.assert_array_equal(frame.payload, payload)

    def test_zero_copy_stream_equivalence(self, ring):
        # A long interleaved stream read zero-copy (with advance) must
        # decode byte-identically to the copying reader.
        rng = np.random.default_rng(3)
        for seq in range(100):
            payload = rng.normal(size=(9, 4))
            assert ring.try_write(FRAME_BATCH, seq=seq, payload=payload,
                                  extra=bytes([seq % 7]))
            frame = ring.try_read(zero_copy=True)
            assert frame.seq == seq
            assert frame.extra == bytes([seq % 7])
            np.testing.assert_array_equal(frame.payload, payload)
            ring.advance(frame)
        assert ring.used_bytes() == 0


class TestWriteRows:
    def test_blocks_decode_as_one_concatenated_payload(self, ring):
        blocks = [
            np.arange(8.0).reshape(2, 4),
            np.arange(8.0, 12.0).reshape(1, 4),
            np.arange(12.0, 24.0).reshape(3, 4),
        ]
        assert ring.write_rows(FRAME_BATCH, seq=5, blocks=blocks,
                               extra=b"meta", trace_id=77)
        frame = ring.try_read()
        assert frame.seq == 5
        assert frame.trace_id == 77
        assert frame.extra == b"meta"
        np.testing.assert_array_equal(
            frame.payload, np.concatenate(blocks, axis=0)
        )

    def test_single_block_matches_try_write(self, ring):
        payload = np.random.default_rng(1).normal(size=(6, 3))
        assert ring.try_write(FRAME_BATCH, seq=1, payload=payload)
        via_write = ring.try_read()
        assert ring.write_rows(FRAME_BATCH, seq=1, blocks=[payload])
        via_rows = ring.try_read()
        np.testing.assert_array_equal(via_rows.payload, via_write.payload)
        assert via_rows.span == via_write.span

    def test_mismatched_columns_raise(self, ring):
        with pytest.raises(ConfigurationError, match="column count"):
            ring.write_rows(
                FRAME_BATCH, seq=0,
                blocks=[np.zeros((2, 3)), np.zeros((2, 4))],
            )

    def test_empty_blocks_raise(self, ring):
        with pytest.raises(ConfigurationError, match="at least one block"):
            ring.write_rows(FRAME_BATCH, seq=0, blocks=[])

    def test_full_ring_returns_false(self, ring):
        blocks = [np.zeros((16, 8))]
        while ring.write_rows(FRAME_BATCH, seq=0, blocks=blocks):
            pass
        assert not ring.write_rows(FRAME_BATCH, seq=1, blocks=blocks)
        ring.try_read()
        assert ring.write_rows(FRAME_BATCH, seq=1, blocks=blocks)

    def test_wraparound_stream(self, ring):
        rng = np.random.default_rng(4)
        for seq in range(120):
            blocks = [rng.normal(size=(int(rng.integers(1, 5)), 6))
                      for _ in range(int(rng.integers(1, 4)))]
            assert ring.write_rows(FRAME_BATCH, seq=seq, blocks=blocks)
            frame = ring.try_read()
            np.testing.assert_array_equal(
                frame.payload, np.concatenate(blocks, axis=0)
            )
        assert ring.used_bytes() == 0


class TestAttach:
    def test_attached_ring_shares_frames(self):
        owner = ShmRing(capacity_bytes=1 << 12)
        try:
            other = ShmRing.attach(owner.name)
            payload = np.eye(3)
            assert owner.try_write(FRAME_BATCH, seq=5, payload=payload)
            frame = other.try_read()
            assert frame.seq == 5
            np.testing.assert_array_equal(frame.payload, payload)
            # Consumption is visible to the owner too.
            assert owner.used_bytes() == 0
            other.close()
        finally:
            owner.close()
            owner.unlink()

    def test_capacity_floor(self):
        with pytest.raises(ConfigurationError):
            ShmRing(capacity_bytes=16)

    @pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                        reason="needs a POSIX shm filesystem to observe")
    def test_child_attach_does_not_destroy_owner_segment(self):
        # On Python < 3.13 a plain attach registers the segment with the
        # child's resource tracker, which unlinks it when the child exits
        # — yanking the shared memory out from under the owner.  The
        # attach path must keep the tracker out of it (``track=False`` on
        # 3.13+, register-suppression before).
        owner = ShmRing(capacity_bytes=1 << 12)
        path = f"/dev/shm/{owner.name.lstrip('/')}"
        assert os.path.exists(path)
        try:
            ctx = mp.get_context("spawn")
            child = ctx.Process(target=_attach_read_and_exit,
                                args=(owner.name,))
            owner.try_write(FRAME_BATCH, seq=7, payload=np.eye(2))
            child.start()
            child.join(timeout=60)
            assert child.exitcode == 0
            # Give the child's resource tracker time to do damage if the
            # attach had (wrongly) registered the segment.
            time.sleep(1.0)
            assert os.path.exists(path)
            # The owner's end still works after the child detached.
            assert owner.try_write(FRAME_BATCH, seq=8, payload=np.eye(2))
        finally:
            owner.close()
            owner.unlink()
        assert not os.path.exists(path)


def _attach_read_and_exit(name):
    """Child-process body for the resource-tracker test."""
    ring = ShmRing.attach(name)
    frame = ring.try_read()
    assert frame is not None and frame.seq == 7
    ring.close()
