"""Unit tests for the shared-memory ring transport (frame round trips,
wraparound, capacity behaviour)."""

import multiprocessing as mp
import os
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServingError
from repro.serving.shm import (
    FRAME_BATCH,
    FRAME_RESULT,
    FRAME_STOP,
    ShmRing,
)


@pytest.fixture()
def ring():
    ring = ShmRing(capacity_bytes=1 << 12)
    yield ring
    ring.close()
    ring.unlink()


class TestFraming:
    def test_round_trip_payload_and_extra(self, ring):
        payload = np.arange(30, dtype=float).reshape(5, 6) * 0.5
        assert ring.try_write(FRAME_BATCH, seq=42, payload=payload,
                              extra=b"metadata")
        frame = ring.try_read()
        assert frame.kind == FRAME_BATCH
        assert frame.seq == 42
        assert frame.extra == b"metadata"
        assert frame.payload.shape == (5, 6)
        assert frame.payload.dtype == np.float64
        np.testing.assert_array_equal(frame.payload, payload)

    def test_empty_ring_reads_none(self, ring):
        assert ring.try_read() is None

    def test_control_frame_without_payload(self, ring):
        assert ring.try_write(FRAME_STOP)
        frame = ring.try_read()
        assert frame.kind == FRAME_STOP
        assert frame.payload is None
        assert frame.extra == b""

    def test_fifo_order_preserved(self, ring):
        for seq in range(5):
            assert ring.try_write(FRAME_RESULT, seq=seq,
                                  payload=np.full((1, 2), float(seq)))
        seqs = [ring.try_read().seq for _ in range(5)]
        assert seqs == [0, 1, 2, 3, 4]
        assert ring.try_read() is None

    def test_payload_must_be_2d(self, ring):
        with pytest.raises(ConfigurationError, match="2-D"):
            ring.try_write(FRAME_BATCH, payload=np.arange(4.0))

    def test_unaligned_extra_is_padded_not_corrupted(self, ring):
        # 3-byte extra forces padding; the next frame must still decode.
        assert ring.try_write(FRAME_RESULT, seq=1, extra=b"abc")
        assert ring.try_write(FRAME_RESULT, seq=2, extra=b"defgh")
        assert ring.try_read().extra == b"abc"
        assert ring.try_read().extra == b"defgh"


class TestCapacity:
    def test_full_ring_rejects_then_accepts_after_drain(self, ring):
        payload = np.zeros((16, 8))  # 1 KiB + header per frame
        written = 0
        while ring.try_write(FRAME_BATCH, seq=written, payload=payload):
            written += 1
        assert written >= 2  # the 4 KiB ring holds a few frames
        assert not ring.try_write(FRAME_BATCH, seq=99, payload=payload)
        assert ring.try_read().seq == 0
        assert ring.try_write(FRAME_BATCH, seq=99, payload=payload)

    def test_oversized_frame_raises_instead_of_spinning(self, ring):
        with pytest.raises(ServingError, match="cannot ever fit"):
            ring.try_write(FRAME_BATCH, payload=np.zeros((1024, 8)))

    def test_wraparound_preserves_content(self, ring):
        # Drive enough traffic through a small ring that frames straddle
        # the physical end many times over.
        rng = np.random.default_rng(0)
        for seq in range(200):
            payload = rng.normal(size=(7, 3))
            assert ring.try_write(FRAME_BATCH, seq=seq, payload=payload,
                                  extra=bytes([seq % 251]))
            frame = ring.try_read()
            assert frame.seq == seq
            np.testing.assert_array_equal(frame.payload, payload)
            assert frame.extra == bytes([seq % 251])
        assert ring.used_bytes() == 0

    def test_interleaved_write_read_tracks_usage(self, ring):
        payload = np.ones((4, 4))
        per_frame = ring.frame_bytes(payload=payload)
        ring.try_write(FRAME_BATCH, payload=payload)
        ring.try_write(FRAME_BATCH, payload=payload)
        assert ring.used_bytes() == 2 * per_frame
        ring.try_read()
        assert ring.used_bytes() == per_frame


class TestAttach:
    def test_attached_ring_shares_frames(self):
        owner = ShmRing(capacity_bytes=1 << 12)
        try:
            other = ShmRing.attach(owner.name)
            payload = np.eye(3)
            assert owner.try_write(FRAME_BATCH, seq=5, payload=payload)
            frame = other.try_read()
            assert frame.seq == 5
            np.testing.assert_array_equal(frame.payload, payload)
            # Consumption is visible to the owner too.
            assert owner.used_bytes() == 0
            other.close()
        finally:
            owner.close()
            owner.unlink()

    def test_capacity_floor(self):
        with pytest.raises(ConfigurationError):
            ShmRing(capacity_bytes=16)

    @pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                        reason="needs a POSIX shm filesystem to observe")
    def test_child_attach_does_not_destroy_owner_segment(self):
        # On Python < 3.13 a plain attach registers the segment with the
        # child's resource tracker, which unlinks it when the child exits
        # — yanking the shared memory out from under the owner.  The
        # attach path must keep the tracker out of it (``track=False`` on
        # 3.13+, register-suppression before).
        owner = ShmRing(capacity_bytes=1 << 12)
        path = f"/dev/shm/{owner.name.lstrip('/')}"
        assert os.path.exists(path)
        try:
            ctx = mp.get_context("spawn")
            child = ctx.Process(target=_attach_read_and_exit,
                                args=(owner.name,))
            owner.try_write(FRAME_BATCH, seq=7, payload=np.eye(2))
            child.start()
            child.join(timeout=60)
            assert child.exitcode == 0
            # Give the child's resource tracker time to do damage if the
            # attach had (wrongly) registered the segment.
            time.sleep(1.0)
            assert os.path.exists(path)
            # The owner's end still works after the child detached.
            assert owner.try_write(FRAME_BATCH, seq=8, payload=np.eye(2))
        finally:
            owner.close()
            owner.unlink()
        assert not os.path.exists(path)


def _attach_read_and_exit(name):
    """Child-process body for the resource-tracker test."""
    ring = ShmRing.attach(name)
    frame = ring.try_read()
    assert frame is not None and frame.seq == 7
    ring.close()
