"""Request-journal codec and writer: round-trips, rotation with META
re-emission, torn-tail recovery, and the writer's lifecycle edges."""

import os
import struct

import numpy as np
import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.serving.journal import (
    JOURNAL_VERSION,
    KIND_META,
    KIND_REQUEST,
    RequestJournal,
    iter_journal,
    pack_bits,
    pack_record,
    read_journal,
    unpack_bits,
    unpack_record,
)


class TestBitPacking:
    def test_round_trip_non_multiple_of_eight(self):
        bits = np.array([True, False, True, True, False, False, True,
                         False, True, True, False])
        blob, n_bits = pack_bits(bits)
        assert n_bits == 11
        assert len(blob) == 2  # 11 bits pack into 2 bytes
        np.testing.assert_array_equal(unpack_bits(blob, n_bits), bits)

    def test_none_means_no_bits(self):
        assert pack_bits(None) == (b"", 0)
        assert unpack_bits(b"", 0) is None


class TestRecordCodec:
    def test_request_round_trip(self):
        header = {"request_id": 7, "status": "ok", "batch": 3,
                  "row_offset": 8, "batch_rows": 16, "fix_fraction": 0.25}
        inputs = np.arange(24.0).reshape(8, 3)
        outputs = inputs * 2.0
        bits = np.array([True, False] * 4)
        body = pack_record(KIND_REQUEST, header, inputs, outputs, bits)
        kind, record = unpack_record(body)
        assert kind == KIND_REQUEST
        assert record.request_id == 7
        assert record.ok
        assert record.batch == 3
        assert record.row_offset == 8
        assert record.batch_rows == 16
        assert record.fix_fraction == 0.25
        np.testing.assert_array_equal(record.inputs, inputs)
        np.testing.assert_array_equal(record.outputs, outputs)
        np.testing.assert_array_equal(record.bits, bits)

    def test_request_without_arrays(self):
        body = pack_record(KIND_REQUEST, {"request_id": 1, "status": "error"})
        _, record = unpack_record(body)
        assert record.inputs is None
        assert record.outputs is None
        assert record.bits is None
        assert not record.ok

    def test_meta_round_trip(self):
        body = pack_record(KIND_META, {"app": "fft", "seed": 0})
        kind, doc = unpack_record(body)
        assert kind == KIND_META
        assert doc == {"app": "fft", "seed": 0}

    def test_truncated_body_raises(self):
        body = pack_record(
            KIND_REQUEST, {"request_id": 1}, np.zeros((4, 4)),
            np.zeros((4, 4)), np.ones(4, dtype=bool),
        )
        for cut in (len(body) // 2, len(body) - 3, 5):
            with pytest.raises(ProtocolError):
                unpack_record(body[:cut])

    def test_unknown_kind_raises(self):
        with pytest.raises(ProtocolError, match="unknown journal record"):
            unpack_record(b"\x77rest")
        with pytest.raises(ConfigurationError):
            pack_record(42, {})


class TestRequestJournal:
    def _fill(self, journal, n, rows=4, cols=3, batch_rows=None, start=0):
        for i in range(start, start + n):
            inputs = np.full((rows, cols), float(i))
            journal.record_request(
                {"request_id": i, "status": "ok", "batch": i,
                 "row_offset": 0, "batch_rows": batch_rows or rows},
                inputs=inputs, outputs=inputs + 1.0,
                bits=np.zeros(rows, dtype=bool),
            )

    def test_write_then_read_back(self, tmp_path):
        path = str(tmp_path / "journal.bin")
        with RequestJournal(path) as journal:
            journal.write_meta({"app": "fft", "backend": "thread"})
            self._fill(journal, 3)
        parsed = read_journal(path)
        assert parsed.meta["app"] == "fft"
        assert parsed.meta["journal_version"] == JOURNAL_VERSION
        assert [r.request_id for r in parsed.records] == [0, 1, 2]
        np.testing.assert_array_equal(
            parsed.records[2].inputs, np.full((4, 3), 2.0)
        )
        assert len(parsed.batches()) == 3

    def test_rotation_re_emits_meta(self, tmp_path):
        path = str(tmp_path / "journal.bin")
        journal = RequestJournal(path, max_bytes=4096)
        journal.write_meta({"app": "fft"})
        # Each record is a few hundred bytes; push past one rotation.
        i = 0
        while journal.rotations == 0:
            self._fill(journal, 1, start=i)
            i += 1
            assert i < 200, "journal never rotated"
        journal.close()
        assert os.path.exists(path + ".1")
        # The live generation alone is still self-describing: the META
        # was re-written at its head during rotation.
        live_only = read_journal(path, include_rotated=False)
        assert live_only.meta is not None and live_only.meta["app"] == "fft"
        # Rotated + live generations read oldest-first with no gaps at
        # the boundary.
        both = read_journal(path)
        ids = [r.request_id for r in both.records]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_torn_tail_keeps_intact_prefix(self, tmp_path):
        path = str(tmp_path / "journal.bin")
        with RequestJournal(path) as journal:
            journal.write_meta({"app": "fft"})
            self._fill(journal, 5)
        # SIGKILL mid-write: the final frame is cut short.  The reader
        # must stop there and keep everything before it.
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 17)
        parsed = read_journal(path)
        assert parsed.meta is not None
        assert [r.request_id for r in parsed.records] == [0, 1, 2, 3]

    def test_corrupted_tail_detected_by_crc(self, tmp_path):
        path = str(tmp_path / "journal.bin")
        with RequestJournal(path) as journal:
            journal.write_meta({"app": "fft"})
            self._fill(journal, 3)
        # Flip one byte inside the last frame's body: the length prefix
        # still matches, so only the CRC can catch it.
        with open(path, "r+b") as handle:
            handle.seek(-10, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-10, os.SEEK_END)
            handle.write(bytes([byte[0] ^ 0xFF]))
        parsed = read_journal(path)
        assert [r.request_id for r in parsed.records] == [0, 1]

    def test_garbage_length_prefix_stops_cleanly(self, tmp_path):
        path = str(tmp_path / "journal.bin")
        with RequestJournal(path) as journal:
            journal.write_meta({"app": "fft"})
            self._fill(journal, 2)
        with open(path, "ab") as handle:
            handle.write(struct.pack("<I", 1 << 30))  # absurd frame claim
        parsed = read_journal(path)
        assert len(parsed.records) == 2

    def test_writes_after_close_are_dropped(self, tmp_path):
        path = str(tmp_path / "journal.bin")
        journal = RequestJournal(path)
        self._fill(journal, 1)
        journal.close()
        self._fill(journal, 1)  # must not raise on the closed handle
        journal.close()  # idempotent
        assert len(read_journal(path).records) == 1

    def test_max_bytes_floor(self, tmp_path):
        with pytest.raises(ConfigurationError, match="at least 4096"):
            RequestJournal(str(tmp_path / "journal.bin"), max_bytes=16)

    def test_missing_file_reads_empty(self, tmp_path):
        parsed = read_journal(str(tmp_path / "nope.bin"))
        assert parsed.meta is None
        assert parsed.records == []
        assert list(iter_journal(str(tmp_path / "nope.bin"))) == []
