"""Golden-journal replay tests.

A short chaos run (one worker SIGKILLed mid-stream on the process
backend) is captured once per module; every test then replays that
golden journal and asserts the determinism contract: both backends
reproduce the recorded outputs, decision bits, and quality metrics bit
for bit, torn tails degrade to skipped batches (not errors), and a
tampered journal makes the replay — and the CLI — fail loudly.
"""

import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving import (
    BatchingConfig,
    ChaosConfig,
    EnsembleConfig,
    JournalConfig,
    RumbaServer,
    ServerConfig,
    read_journal,
    replay_journal,
)
from repro.serving.journal import JournalRecord, RequestJournal

N_REQUESTS = 24
ROWS_PER_REQUEST = 8


@pytest.fixture(scope="module")
def golden_journal(tmp_path_factory):
    """Capture a chaos run: process backend, one SIGKILL mid-stream."""
    path = str(tmp_path_factory.mktemp("golden") / "journal.bin")
    config = ServerConfig(
        app="fft",
        scheme="treeErrors",
        backend="process",
        n_workers=2,
        seed=0,
        batching=BatchingConfig(max_batch_requests=4,
                                flush_interval_s=0.002),
        # seed-only chaos: the monkey exists (so we can murder a worker
        # deterministically) but injects nothing by itself.
        chaos=ChaosConfig(seed=1),
        journal=JournalConfig(path=path),
    )
    server = RumbaServer(config=config)
    server.prepare()
    rng = np.random.default_rng(7)
    pool = np.atleast_2d(server.prototype.app.test_inputs(rng))
    failed = 0
    with server:
        handles = []
        for i in range(N_REQUESTS):
            lo = (i * ROWS_PER_REQUEST) % (
                pool.shape[0] - ROWS_PER_REQUEST
            )
            handles.append(
                server.submit(pool[lo: lo + ROWS_PER_REQUEST],
                              deadline_s=60.0)
            )
            if i == N_REQUESTS // 2:
                assert server.chaos_monkey.kill_one_worker()
        for handle in handles:
            try:
                handle.result(timeout=120.0)
            except Exception:
                failed += 1
    journal = read_journal(path)
    assert journal.meta["backend"] == "process"
    assert len(journal.ok_records()) == N_REQUESTS - failed
    assert journal.batches(), "chaos run recorded no replayable batches"
    return path


class TestGoldenReplay:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_chaos_run_replays_bit_for_bit(self, golden_journal, backend):
        report = replay_journal(golden_journal, backend=backend)
        assert report.ok, report.summary()
        assert report.compared > 0
        assert report.backend == backend
        # The replay-side journal is scratch and must be cleaned up.
        assert not os.path.exists(golden_journal + ".replay")

    def test_torn_tail_skips_batch_but_stays_ok(self, golden_journal,
                                                tmp_path):
        torn = str(tmp_path / "torn.bin")
        with open(golden_journal, "rb") as src:
            blob = src.read()
        with open(torn, "wb") as dst:
            dst.write(blob[:-31])  # cut the final frame mid-record
        whole = read_journal(golden_journal)
        parsed = read_journal(torn)
        assert len(parsed.records) == len(whole.records) - 1
        report = replay_journal(torn, backend="thread")
        assert report.ok, report.summary()
        # The batch the torn record belonged to is incomplete, so it is
        # skipped rather than mis-compared.
        assert report.batches + report.skipped_incomplete >= len(
            parsed.batches()
        )

    def test_tampered_outputs_diverge(self, golden_journal, tmp_path):
        tampered = self._tamper(golden_journal, tmp_path, "outputs")
        report = replay_journal(tampered, backend="thread")
        assert not report.ok
        assert any(d.field == "outputs" for d in report.divergences)

    def test_tampered_bits_diverge(self, golden_journal, tmp_path):
        tampered = self._tamper(golden_journal, tmp_path, "bits")
        report = replay_journal(tampered, backend="thread")
        assert not report.ok
        assert any(d.field == "bits" for d in report.divergences)

    @staticmethod
    def _tamper(path, tmp_path, what):
        """Rewrite the journal with one record's payload falsified."""
        journal = read_journal(path)
        out = str(tmp_path / f"tampered-{what}.bin")
        victim = journal.ok_records()[0].request_id
        with RequestJournal(out) as writer:
            writer.write_meta(journal.meta)
            for record in journal.records:
                outputs, bits = record.outputs, record.bits
                if record.request_id == victim:
                    if what == "outputs" and outputs is not None:
                        outputs = outputs + 1e-9
                    elif what == "bits" and bits is not None:
                        bits = ~bits
                writer.record_request(record.header, inputs=record.inputs,
                                      outputs=outputs, bits=bits)
        return out


@pytest.fixture(scope="module")
def golden_ensemble_journal(tmp_path_factory):
    """Ensemble chaos capture: per-row routed members ride the journal.

    Same shape as ``golden_journal`` (process backend, one SIGKILL
    mid-stream) but with a three-member ensemble routing every batch.
    Requests sample rows from across the whole test pool and margin
    0.21 sits on fft's routing boundary, so traffic genuinely splits
    across members — including *within* single batches.
    """
    path = str(tmp_path_factory.mktemp("golden-ens") / "journal.bin")
    config = ServerConfig(
        app="fft",
        scheme="treeErrors",
        backend="process",
        n_workers=2,
        seed=0,
        batching=BatchingConfig(max_batch_requests=4,
                                flush_interval_s=0.002),
        chaos=ChaosConfig(seed=1),
        journal=JournalConfig(path=path),
        ensemble=EnsembleConfig(enabled=True, margin=0.21),
    )
    server = RumbaServer(config=config)
    server.prepare()
    rng = np.random.default_rng(7)
    pool = np.atleast_2d(server.prototype.app.test_inputs(rng))
    failed = 0
    with server:
        handles = []
        for i in range(N_REQUESTS):
            rows = rng.choice(pool.shape[0], size=ROWS_PER_REQUEST,
                              replace=False)
            handles.append(
                server.submit(pool[rows], deadline_s=60.0)
            )
            if i == N_REQUESTS // 2:
                assert server.chaos_monkey.kill_one_worker()
        for handle in handles:
            try:
                handle.result(timeout=120.0)
            except Exception:
                failed += 1
    journal = read_journal(path)
    recorded = journal.ok_records()
    assert len(recorded) == N_REQUESTS - failed
    # Every successful record journaled its routed member per row...
    assert all(r.header.get("backend_ids") is not None for r in recorded)
    # ...traffic actually split across members...
    chosen = {i for r in recorded for i in r.header["backend_ids"]}
    assert len(chosen) >= 2
    # ...and some rows went unrecovered (the tamper test flips the
    # routing of un-fired rows, whose outputs stay approximate).
    assert any(r.bits is not None and not r.bits.all() for r in recorded)
    return path


class TestEnsembleReplay:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_ensemble_chaos_run_replays_bit_for_bit(
        self, golden_ensemble_journal, backend
    ):
        report = replay_journal(golden_ensemble_journal, backend=backend)
        assert report.ok, report.summary()
        assert report.compared > 0
        assert report.backend == backend

    def test_meta_round_trips_ensemble_config(self,
                                              golden_ensemble_journal):
        meta = read_journal(golden_ensemble_journal).meta
        assert meta["config"]["ensemble_enabled"] is True
        assert meta["config"]["ensemble_margin"] == 0.21
        assert meta["config"]["ensemble_members"] == \
            "mlp:large,mlp:small,memo"

    def test_tampered_backend_ids_diverge(self, golden_ensemble_journal,
                                          tmp_path):
        """Falsified routing decisions must fail the replay loudly: the
        forced (tampered) members produce different approximate outputs
        on the rows recovery never touched."""
        journal = read_journal(golden_ensemble_journal)
        victim = next(
            r.request_id for r in journal.ok_records()
            if r.bits is not None and not r.bits.all()
            and r.header.get("backend_ids")
        )
        out = str(tmp_path / "tampered-backend-ids.bin")
        with RequestJournal(out) as writer:
            writer.write_meta(journal.meta)
            for record in journal.records:
                header = dict(record.header)
                if record.request_id == victim:
                    header["backend_ids"] = [
                        (int(c) + 1) % 3
                        for c in header["backend_ids"]
                    ]
                writer.record_request(header, inputs=record.inputs,
                                      outputs=record.outputs,
                                      bits=record.bits)
        report = replay_journal(out, backend="thread")
        assert not report.ok
        assert any(d.field == "outputs" for d in report.divergences)


class TestBackendIdDiff:
    """The backend_ids comparison in the batch differ: it guards the
    forcing path itself (a replay that ignored the journaled choices
    would re-route live and show up here)."""

    @staticmethod
    def _record(ids, rows=2):
        header = {"request_id": 0, "status": "ok", "batch": 0,
                  "row_offset": 0, "batch_rows": rows,
                  "fix_fraction": 0.0}
        if ids is not None:
            header["backend_ids"] = ids
        return JournalRecord(
            header=header,
            inputs=np.arange(rows, dtype=float).reshape(-1, 1),
            outputs=np.zeros((rows, 2)),
        )

    def _diff(self, recorded_ids, replayed_ids):
        from repro.serving.replay import _diff_batch

        return _diff_batch(
            0, [self._record(recorded_ids)], self._record(replayed_ids)
        )

    def test_matching_ids_clean(self):
        assert self._diff([0, 2], [0, 2]) == []

    def test_missing_replay_ids_flagged(self):
        divergences = self._diff([0, 2], None)
        assert [d.field for d in divergences] == ["backend_ids"]
        assert "no member choices" in divergences[0].detail

    def test_flipped_ids_flagged(self):
        divergences = self._diff([0, 2], [0, 1])
        assert [d.field for d in divergences] == ["backend_ids"]
        assert "1 rows" in divergences[0].detail

    def test_length_mismatch_flagged(self):
        divergences = self._diff([0, 2], [0, 2, 1])
        assert [d.field for d in divergences] == ["backend_ids"]
        assert "different lengths" in divergences[0].detail

    def test_non_ensemble_records_skip_comparison(self):
        assert self._diff(None, None) == []


class TestReplayEdges:
    def test_journal_without_meta_is_rejected(self, tmp_path):
        path = str(tmp_path / "headless.bin")
        with RequestJournal(path) as journal:
            journal.record_request({"request_id": 0, "status": "ok"})
        with pytest.raises(ConfigurationError, match="no META"):
            replay_journal(path)

    def test_cli_exit_codes(self, golden_journal, tmp_path):
        from repro.__main__ import main

        assert main(["replay", golden_journal, "--backend", "thread"]) == 0
        tampered = TestGoldenReplay._tamper(
            golden_journal, tmp_path, "outputs"
        )
        assert main(["replay", tampered, "--backend", "thread"]) == 1
