"""Admission queue and batch formation semantics."""

import threading
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServingError
from repro.serving import AdmissionQueue, ServeRequest, concat_inputs, split_outputs


def _request(request_id=0, n=4, width=1, at=None):
    return ServeRequest(
        request_id=request_id,
        inputs=np.ones((n, width)),
        submitted_at=time.monotonic() if at is None else at,
    )


class TestAdmissionQueue:
    def test_batch_flushes_at_max_size(self):
        queue = AdmissionQueue(
            capacity=16, max_batch_requests=3, flush_interval_s=60.0
        )
        for i in range(5):
            assert queue.offer(_request(i))
        batch = queue.take_batch()
        assert [r.request_id for r in batch] == [0, 1, 2]
        # Two leftovers are below max size; with a long flush interval
        # they only come out once the queue is closed.
        queue.close()
        assert [r.request_id for r in queue.take_batch()] == [3, 4]
        assert queue.take_batch() is None

    def test_deadline_flushes_partial_batch(self):
        queue = AdmissionQueue(
            capacity=16, max_batch_requests=100, flush_interval_s=0.02
        )
        queue.offer(_request(7))
        started = time.monotonic()
        batch = queue.take_batch()
        waited = time.monotonic() - started
        assert [r.request_id for r in batch] == [7]
        # Flushed by the deadline, not by size — and without busy-waiting
        # far past it.
        assert waited < 1.0

    def test_full_queue_sheds(self):
        queue = AdmissionQueue(capacity=2, max_batch_requests=2)
        assert queue.offer(_request(0))
        assert queue.offer(_request(1))
        assert not queue.offer(_request(2))
        assert queue.shed == 1
        assert queue.offered == 3

    def test_requeue_after_close_raises(self):
        # Regression: requeue() on a closed queue must raise the typed
        # error rather than silently dropping the retry — a dropped
        # retry leaves the submitter blocked until its deadline runs out.
        queue = AdmissionQueue()
        queue.close()
        with pytest.raises(ServingError, match="closed"):
            queue.requeue(_request(1))

    def test_requeue_races_close_without_losing_requests(self):
        # Many in-flight retries race one close(): every requeue either
        # lands in the queue (drainable afterwards) or raises the typed
        # ServingError — never a silent drop, never a hang.
        for attempt in range(10):
            queue = AdmissionQueue(capacity=64, max_batch_requests=64,
                                   flush_interval_s=60.0)
            landed = []
            rejected = []
            barrier = threading.Barrier(9)

            def requeue_one(request_id):
                request = _request(request_id)
                barrier.wait()
                try:
                    queue.requeue(request)
                    landed.append(request_id)
                except ServingError:
                    rejected.append(request_id)

            threads = [
                threading.Thread(target=requeue_one, args=(i,))
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            queue.close()
            for thread in threads:
                thread.join(timeout=10.0)
            assert not any(t.is_alive() for t in threads)
            drained = queue.drain_remaining()
            # take_batch path also empty after drain; accounting closes.
            assert len(landed) + len(rejected) == 8
            assert sorted(r.request_id for r in drained) == sorted(landed)

    def test_offer_after_close_raises(self):
        queue = AdmissionQueue()
        queue.close()
        with pytest.raises(ServingError):
            queue.offer(_request())

    def test_take_batch_wakes_on_arrival(self):
        queue = AdmissionQueue(
            capacity=8, max_batch_requests=1, flush_interval_s=10.0
        )
        got = []

        def consume():
            got.append(queue.take_batch())

        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.05)
        queue.offer(_request(9))
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        # max_batch_requests=1 means a single arrival is already a full
        # batch — no deadline wait.
        assert [r.request_id for r in got[0]] == [9]

    def test_validations(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ConfigurationError):
            AdmissionQueue(max_batch_requests=0)
        with pytest.raises(ConfigurationError):
            AdmissionQueue(flush_interval_s=-1.0)


class TestBatchSplitting:
    def test_concat_then_split_roundtrips(self):
        requests = [_request(0, n=2, width=3), _request(1, n=5, width=3)]
        merged = concat_inputs(requests)
        assert merged.shape == (7, 3)
        outputs = np.arange(14.0).reshape(7, 2)
        blocks = split_outputs(outputs, requests)
        assert [b.shape[0] for b in blocks] == [2, 5]
        assert np.array_equal(np.concatenate(blocks), outputs)

    def test_split_row_mismatch_rejected(self):
        with pytest.raises(ServingError):
            split_outputs(np.ones((3, 1)), [_request(0, n=2)])

    def test_concat_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            concat_inputs([])
