"""Client auto-reconnect and node-identity tests.

The contract: idempotent calls (``stats()``) get one transparent
reconnect-and-replay when the connection dies underneath them; data
requests in flight fail *fast* with the typed, retryable
:class:`~repro.errors.ConnectionLostError` — never silently replayed,
because the client cannot know whether the server executed them.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ConnectionLostError, WorkerCrashError
from repro.serving import (
    BatchingConfig,
    NetServer,
    RumbaClient,
    RumbaServer,
    ServerConfig,
)


def _make_node(prototype, port: int = 0, node_id=None) -> NetServer:
    server = RumbaServer(
        prototype=prototype.clone_shard(),
        config=ServerConfig(
            n_workers=1,
            batching=BatchingConfig(max_batch_requests=4,
                                    flush_interval_s=0.002),
        ),
    )
    return NetServer(server, "127.0.0.1", port, node_id=node_id).start()


class TestNodeIdentity:
    def test_welcome_carries_node_identity(self, fft_prototype):
        node = _make_node(fft_prototype, node_id="pinned-id")
        try:
            with RumbaClient(*node.address) as client:
                assert client.welcome["node_id"] == "pinned-id"
                assert client.welcome["started_at_monotonic"] is not None
                assert client.node_id == "pinned-id"
        finally:
            node.stop()

    def test_default_node_id_changes_across_restart(self, fft_prototype):
        node = _make_node(fft_prototype)
        port = node.address[1]
        with RumbaClient(*node.address) as client:
            first = client.welcome["node_id"]
            first_start = client.welcome["started_at_monotonic"]
        node.stop()
        node = _make_node(fft_prototype, port=port)
        try:
            with RumbaClient(*node.address) as client:
                assert client.welcome["node_id"] != first
                assert client.welcome["started_at_monotonic"] != first_start
        finally:
            node.stop()


class TestAutoReconnect:
    def test_stats_reconnects_transparently(self, fft_prototype):
        node = _make_node(fft_prototype)
        port = node.address[1]
        client = RumbaClient(*node.address)
        try:
            before = client.stats()
            assert before["state"] == "running"
            node.stop()
            node = _make_node(fft_prototype, port=port)
            # One stats() call: detects the dead socket, reconnects,
            # replays — no error surfaces to the caller.
            after = client.stats()
            assert after["state"] == "running"
            assert client.node_id == node.node_id
        finally:
            client.close()
            node.stop()

    def test_inflight_requests_fail_fast_and_typed(
        self, fft_prototype, fft_input_pool
    ):
        node = _make_node(fft_prototype)
        client = RumbaClient(*node.address)
        try:
            handles = [
                client.submit(fft_input_pool[:8], deadline_s=30.0)
                for _ in range(4)
            ]
            node.stop()
            started = time.monotonic()
            failures = 0
            for handle in handles:
                try:
                    handle.result(10.0)
                except ConnectionLostError:
                    failures += 1
            # All in-flight requests fail (fast), and the error class is
            # the retryable WorkerCrashError family, so a caller's
            # existing retry policy applies unchanged.
            assert failures == len(handles)
            assert issubclass(ConnectionLostError, WorkerCrashError)
            assert time.monotonic() - started < 10.0
        finally:
            client.close()

    def test_submit_after_reconnect_works(
        self, fft_prototype, fft_input_pool
    ):
        node = _make_node(fft_prototype)
        port = node.address[1]
        client = RumbaClient(*node.address)
        try:
            client.submit_wait(fft_input_pool[:8], deadline_s=30.0)
            node.stop()
            node = _make_node(fft_prototype, port=port)
            # submit() is not replayed, but a *new* submit on the same
            # client object reconnects and proceeds.
            result = client.submit_wait(fft_input_pool[:8], deadline_s=30.0)
            assert result.outputs.shape[0] == 8
        finally:
            client.close()
            node.stop()

    def test_auto_reconnect_off_raises_typed(self, fft_prototype):
        node = _make_node(fft_prototype)
        client = RumbaClient(*node.address, auto_reconnect=False)
        try:
            client.stats()
            node.stop()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    client.stats(timeout=2.0)
                except ConnectionLostError:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("dead connection never raised "
                            "ConnectionLostError with auto_reconnect=False")
        finally:
            client.close()

    def test_reconnect_to_dead_server_raises_typed(self, fft_prototype):
        node = _make_node(fft_prototype)
        client = RumbaClient(*node.address)
        try:
            node.stop()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    client.stats(timeout=2.0)
                except ConnectionLostError:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("stats() against a dead address never raised "
                            "ConnectionLostError")
        finally:
            client.close()
