"""End-to-end cluster-tier tests over in-process serving nodes.

Every node is a real :class:`NetServer` (sharing the session's trained
prototype via ``clone_shard``); the router, links, probes, eviction,
drain, and retry machinery all run exactly as in production — only the
node *processes* are in-process, which keeps these tests fast.  The
subprocess/SIGKILL drill lives in ``test_fleet_chaos.py``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import ServingError
from repro.observability.export import prometheus_text
from repro.observability.reqtrace import TracingPolicy
from repro.serving import (
    BatchingConfig,
    ClusterConfig,
    ClusterRouter,
    NetServer,
    RumbaClient,
    RumbaServer,
    ServerConfig,
    serve_cluster,
)


def _config(**overrides) -> ServerConfig:
    base = dict(
        n_workers=1,
        n_recovery_workers=1,
        batching=BatchingConfig(max_batch_requests=4,
                                flush_interval_s=0.002),
    )
    base.update(overrides)
    return ServerConfig(**base)


def _make_node(prototype, port: int = 0, node_id=None) -> NetServer:
    server = RumbaServer(prototype=prototype.clone_shard(),
                         config=_config())
    return NetServer(server, "127.0.0.1", port, node_id=node_id).start()


def _addr(net: NetServer) -> str:
    return f"{net.address[0]}:{net.address[1]}"


def _cluster_config(**overrides) -> ClusterConfig:
    base = dict(
        policy="round_robin",
        probe_interval_s=0.05,
        pool_size=1,
        backoff_initial_s=0.2,
        backoff_max_s=2.0,
    )
    base.update(overrides)
    return ClusterConfig(**base)


@pytest.fixture()
def two_nodes(fft_prototype):
    nodes = [_make_node(fft_prototype) for _ in range(2)]
    yield nodes
    for node in nodes:
        try:
            node.stop()
        except Exception:
            pass


@pytest.fixture()
def router(two_nodes):
    r = serve_cluster(
        [_addr(n) for n in two_nodes],
        policy="round_robin",
        config=_cluster_config(),
        wait_for=2,
    )
    yield r
    r.stop()


@pytest.fixture()
def client(router):
    with RumbaClient(*router.address) as c:
        yield c


def _inputs(pool, n: int = 8) -> np.ndarray:
    return pool[:n]


class TestRouterFront:
    def test_welcome_is_protocol_compatible(self, client, two_nodes):
        assert client.welcome["server"] == "rumba-router"
        assert client.app == "fft"
        assert client.scheme == "treeErrors"
        assert client.features > 0
        cluster = client.welcome["cluster"]
        assert cluster["nodes"] == 2
        assert cluster["policy"] == "round_robin"

    def test_requests_spread_across_nodes(
        self, client, two_nodes, fft_input_pool
    ):
        handles = [
            client.submit(_inputs(fft_input_pool), deadline_s=30.0)
            for _ in range(10)
        ]
        nodes_seen = {
            h.result(30.0).worker.split("/", 1)[0] for h in handles
        }
        assert nodes_seen == {_addr(n) for n in two_nodes}

    def test_results_match_direct_node(
        self, client, two_nodes, fft_input_pool
    ):
        via_router = client.submit_wait(
            _inputs(fft_input_pool), deadline_s=30.0
        )
        with RumbaClient(*two_nodes[0].address) as direct:
            direct_result = direct.submit_wait(
                _inputs(fft_input_pool), deadline_s=30.0
            )
        np.testing.assert_allclose(
            via_router.outputs, direct_result.outputs
        )

    def test_fleet_stats_aggregate(
        self, client, router, fft_input_pool
    ):
        for _ in range(6):
            client.submit_wait(_inputs(fft_input_pool), deadline_s=30.0)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            doc = client.stats()
            if doc["nodes_reporting"] == 2 and (
                doc["aggregate"].get("requests_offered", 0) >= 6
            ):
                break
            time.sleep(0.05)
        assert doc["server"] == "rumba-cluster"
        assert doc["nodes_total"] == 2
        assert doc["nodes_reporting"] == 2
        assert doc["node_states"] == {"healthy": 2}
        # Counters sum across the fleet.
        assert doc["aggregate"]["requests_offered"] >= 6
        assert doc["aggregate"]["healthy"] is True
        assert len(doc["health"]) == 2
        for row in doc["health"].values():
            assert row["state"] == "healthy"
            assert row["node_id"]
        assert doc["router"]["requests_routed"] >= 6
        assert doc["router"]["policy"] == "round_robin"

    def test_consistent_hash_sticks_to_one_node(
        self, two_nodes, fft_input_pool
    ):
        router = serve_cluster(
            [_addr(n) for n in two_nodes],
            policy="consistent_hash",
            config=_cluster_config(policy="consistent_hash"),
            wait_for=2,
        )
        try:
            with RumbaClient(*router.address) as client:
                handles = [
                    client.submit(_inputs(fft_input_pool), deadline_s=30.0)
                    for _ in range(8)
                ]
                nodes_seen = {
                    h.result(30.0).worker.split("/", 1)[0] for h in handles
                }
            assert len(nodes_seen) == 1
        finally:
            router.stop()

    def test_router_stage_stamps_exported(
        self, two_nodes, fft_input_pool
    ):
        router = ClusterRouter(
            _cluster_config(nodes=tuple(_addr(n) for n in two_nodes)),
            tracing=TracingPolicy(sample_every=1),
        ).start()
        try:
            assert router.wait_for_nodes(2, timeout=10.0)
            with RumbaClient(*router.address) as client:
                client.submit_wait(
                    _inputs(fft_input_pool), deadline_s=30.0, trace=True
                )
            text = prometheus_text(router.registry)
            assert 'stage="router_forward"' in text
            assert "rumba_cluster_requests_total" in text
        finally:
            router.stop()


class TestDrain:
    def test_drain_completes_inflight_and_diverts(
        self, router, client, two_nodes, fft_input_pool
    ):
        target = _addr(two_nodes[0])
        handles = [
            client.submit(_inputs(fft_input_pool), deadline_s=30.0)
            for _ in range(12)
        ]
        assert router.drain(target, timeout=20.0) is True
        # Every request accepted before the drain still completes.
        assert all(h.result(30.0) is not None for h in handles)
        # New traffic only touches the survivor.
        after = [
            client.submit(_inputs(fft_input_pool), deadline_s=30.0)
            for _ in range(6)
        ]
        nodes_seen = {
            h.result(30.0).worker.split("/", 1)[0] for h in after
        }
        assert nodes_seen == {_addr(two_nodes[1])}
        # Undrain restores the pair.
        router.undrain(target)
        deadline = time.monotonic() + 10.0
        seen = set()
        while time.monotonic() < deadline and len(seen) < 2:
            h = client.submit(_inputs(fft_input_pool), deadline_s=30.0)
            seen.add(h.result(30.0).worker.split("/", 1)[0])
        assert seen == {_addr(n) for n in two_nodes}


class TestFailover:
    def test_node_death_retries_on_survivor_exactly_once(
        self, router, client, two_nodes, fft_input_pool
    ):
        handles = [
            client.submit(_inputs(fft_input_pool), deadline_s=30.0)
            for _ in range(12)
        ]
        two_nodes[1].stop()
        results = [h.result(30.0) for h in handles]
        # Exactly-once: every accepted request produced exactly one
        # result, none was lost to the killed node, none duplicated.
        assert len(results) == 12
        survivor = _addr(two_nodes[0])
        doc = router.stats_document()
        assert doc["router"]["requests_retried"] >= 0
        # Post-mortem traffic flows entirely to the survivor.
        post = client.submit_wait(_inputs(fft_input_pool), deadline_s=30.0)
        assert post.worker.startswith(survivor)

    def test_no_healthy_nodes_fails_fast(self, fft_prototype, fft_input_pool):
        node = _make_node(fft_prototype)
        router = serve_cluster(
            [_addr(node)],
            policy="round_robin",
            config=_cluster_config(
                failure_threshold=1,
                backoff_initial_s=30.0,
                backoff_max_s=60.0,
            ),
            wait_for=1,
        )
        try:
            node.stop()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and router.manager.candidates():
                time.sleep(0.05)
            assert not router.manager.candidates()
            with RumbaClient(*router.address) as client:
                started = time.monotonic()
                with pytest.raises(ServingError):
                    client.submit_wait(
                        _inputs(fft_input_pool), deadline_s=30.0
                    )
                # Fail-fast, not deadline-long.
                assert time.monotonic() - started < 5.0
        finally:
            router.stop()

    def test_eviction_then_readmission_after_backoff(
        self, fft_prototype, fft_input_pool
    ):
        node_a = _make_node(fft_prototype)
        node_b = _make_node(fft_prototype)
        addr_a, addr_b = _addr(node_a), _addr(node_b)
        router = serve_cluster(
            [addr_a, addr_b],
            policy="round_robin",
            config=_cluster_config(
                failure_threshold=2,
                backoff_initial_s=0.2,
                probe_timeout_s=2.0,
            ),
            wait_for=2,
        )
        try:
            port_a = node_a.address[1]
            node_a.stop()
            deadline = time.monotonic() + 15.0
            state = router.manager.nodes[addr_a]
            while time.monotonic() < deadline and state.state != "evicted":
                time.sleep(0.05)
            assert state.state == "evicted"
            assert state.evictions >= 1
            old_id = state.node_id
            # Same address, new process: restart detection must reset
            # the health record and the re-admission probe must bring
            # it back after the backoff elapses.
            node_a = _make_node(fft_prototype, port=port_a)
            assert router.wait_for_nodes(2, timeout=20.0)
            assert state.state == "healthy"
            assert state.node_id != old_id
            assert state.restarts_detected >= 1
            with RumbaClient(*router.address) as client:
                seen = set()
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline and len(seen) < 2:
                    h = client.submit(
                        _inputs(fft_input_pool), deadline_s=30.0
                    )
                    seen.add(h.result(30.0).worker.split("/", 1)[0])
                assert seen == {addr_a, addr_b}
        finally:
            router.stop()
            for node in (node_a, node_b):
                try:
                    node.stop()
                except Exception:
                    pass


class TestFleetManagement:
    def test_add_and_remove_node_live(
        self, fft_prototype, fft_input_pool
    ):
        node_a = _make_node(fft_prototype)
        node_b = _make_node(fft_prototype)
        router = serve_cluster(
            [_addr(node_a)], policy="round_robin",
            config=_cluster_config(), wait_for=1,
        )
        try:
            router.add_node(_addr(node_b))
            assert router.wait_for_nodes(2, timeout=10.0)
            router.remove_node(_addr(node_a))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and (
                _addr(node_a) in router.manager.nodes
            ):
                time.sleep(0.02)
            with RumbaClient(*router.address) as client:
                result = client.submit_wait(
                    _inputs(fft_input_pool), deadline_s=30.0
                )
            assert result.worker.startswith(_addr(node_b))
        finally:
            router.stop()
            node_a.stop()
            node_b.stop()


class TestLinkSendRegistration:
    def test_sync_send_failure_leaves_entry_unregistered(self):
        """A write that raises must not register the entry in pending.

        Otherwise connection_lost() strands the entry into the retry
        path *and* the caller retries it explicitly — the same request
        forwarded to two nodes at once.
        """
        from repro.serving.cluster.nodes import Node, NodeLink

        node = Node("127.0.0.1:9")
        link = NodeLink(node, manager=None)

        class DeadWriter:
            def write(self, blob):
                raise ConnectionResetError("link died mid-write")

        link.writer = DeadWriter()
        with pytest.raises(ConnectionError):
            link.send_request(object(), b"body")
        assert link.pending == {}
        assert node.inflight == 0
