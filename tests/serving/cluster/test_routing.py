"""Routing-policy unit tests: no sockets, just fake candidates."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serving.cluster.routing import (
    ConsistentHashPolicy,
    LeastLoadedPolicy,
    POLICY_NAMES,
    RequestContext,
    RoundRobinPolicy,
    make_policy,
)


class FakeNode:
    def __init__(self, name: str, load: int = 0):
        self.name = name
        self._load = load

    def load(self) -> int:
        return self._load


CTX = RequestContext(app="fft", scheme="treeErrors", n_elements=16)


class TestRoundRobin:
    def test_cycles_in_name_order(self):
        nodes = [FakeNode("c"), FakeNode("a"), FakeNode("b")]
        policy = RoundRobinPolicy()
        picks = [policy.select(nodes, CTX).name for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_survives_member_change(self):
        policy = RoundRobinPolicy()
        nodes = [FakeNode("a"), FakeNode("b")]
        policy.select(nodes, CTX)
        # A node vanished; the counter keeps cycling over what's left.
        assert policy.select([FakeNode("b")], CTX).name == "b"


class TestLeastLoaded:
    def test_picks_minimum_depth(self):
        nodes = [FakeNode("a", 5), FakeNode("b", 1), FakeNode("c", 3)]
        assert LeastLoadedPolicy().select(nodes, CTX).name == "b"

    def test_ties_break_by_name(self):
        nodes = [FakeNode("b", 2), FakeNode("a", 2)]
        assert LeastLoadedPolicy().select(nodes, CTX).name == "a"


class TestConsistentHash:
    def test_deterministic_and_order_independent(self):
        policy = ConsistentHashPolicy()
        nodes = [FakeNode("a"), FakeNode("b"), FakeNode("c")]
        first = policy.select(nodes, CTX).name
        assert policy.select(list(reversed(nodes)), CTX).name == first
        assert policy.select(nodes, CTX).name == first

    def test_app_affinity(self):
        # Different apps may hash to different nodes, but each app's
        # traffic is sticky: same key, same node, every time.
        policy = ConsistentHashPolicy()
        nodes = [FakeNode(f"n{i}") for i in range(4)]
        for app in ("fft", "sobel", "kmeans"):
            context = RequestContext(app=app)
            picks = {policy.select(nodes, context).name for _ in range(8)}
            assert len(picks) == 1

    def test_minimal_movement_on_member_loss(self):
        policy = ConsistentHashPolicy()
        nodes = [FakeNode(f"n{i}") for i in range(4)]
        contexts = [RequestContext(app=f"app{i}") for i in range(32)]
        before = {
            c.app: policy.select(nodes, c).name for c in contexts
        }
        survivors = [n for n in nodes if n.name != "n1"]
        after = {
            c.app: policy.select(survivors, c).name for c in contexts
        }
        # Keys that were NOT on the removed node must not move.
        for app, owner in before.items():
            if owner != "n1":
                assert after[app] == owner

    def test_custom_key_fn(self):
        policy = ConsistentHashPolicy(
            key_fn=lambda context: str(context.n_elements)
        )
        nodes = [FakeNode("a"), FakeNode("b"), FakeNode("c")]
        small = RequestContext(app="x", n_elements=1)
        # Same derived key, same node — app is ignored by this key_fn.
        assert (
            policy.select(nodes, small).name
            == policy.select(nodes, RequestContext(app="y", n_elements=1)).name
        )

    def test_replicas_validated(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashPolicy(replicas=0)


class TestFactory:
    def test_registry_names(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            make_policy("random")
