"""The cluster chaos drill: SIGKILL a real node process mid-run.

This is the node-level mirror of ``tests/serving/test_faults.py``: the
fleet of spawned ``python -m repro serve --listen`` children presents
the same ``workers``/``alive()``/``process.pid`` surface as a
``ProcessWorkerPool``, so the *existing* :class:`ChaosMonkey` is reused
unchanged — ``attach_pool(fleet)`` + ``kill_one_worker()`` murders a
whole node.  The acceptance property is exactly-once completion:
every request accepted by the router resolves exactly one time, with
zero lost to the killed node and zero duplicated by the retry path.
"""

from __future__ import annotations

import pytest

from repro.serving import (
    ChaosConfig,
    ChaosMonkey,
    RumbaClient,
    serve_cluster,
    spawn_local_fleet,
)
from repro.serving.cluster import ClusterRouter  # noqa: F401 - re-export check
from repro.serving.config import ClusterConfig

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def fleet():
    with spawn_local_fleet(2, app="fft", workers=1) as f:
        yield f


def test_sigkilled_node_requests_retried_on_survivor(
    fleet, fft_input_pool
):
    router = serve_cluster(
        fleet.addresses,
        policy="round_robin",
        config=ClusterConfig(
            probe_interval_s=0.1,
            pool_size=1,
            failure_threshold=2,
            max_retries=2,
            backoff_initial_s=1.0,
        ),
        wait_for=2,
        timeout=60.0,
    )
    monkey = ChaosMonkey(ChaosConfig(kill_rate=0.0, seed=7))
    monkey.attach_pool(fleet)
    try:
        with RumbaClient(*router.address, timeout_s=60.0) as client:
            handles = [
                client.submit(fft_input_pool[:8], deadline_s=30.0)
                for _ in range(30)
            ]
            # Mid-run: SIGKILL one whole node, the ProcessWorkerPool way.
            assert monkey.kill_one_worker() is True
            results = [h.result(45.0) for h in handles]
        # Exactly once: all 30 accepted requests produced exactly one
        # completion each — none lost with the murdered node, none
        # duplicated by the redelivery.
        assert len(results) == 30
        assert monkey.kills == 1
        assert fleet.alive_count() == 1
        survivor = next(h for h in fleet.workers if h.alive())
        assert all(
            r.worker.split("/", 1)[0] == survivor.address
            for r in results[-5:]
        )
        doc = router.stats_document()
        assert doc["router"]["requests_retried"] >= 1
        # The dead node leaves the routable set.
        assert not router.wait_for_nodes(2, timeout=1.0)
    finally:
        router.stop()


def test_fleet_spawns_with_pinned_node_ids(fleet):
    # The chaos drill above may have murdered a node; use a survivor.
    alive = [h.address for h in fleet.workers if h.alive()]
    router = serve_cluster(
        alive[:1],
        policy="round_robin",
        config=ClusterConfig(probe_interval_s=0.2, pool_size=1),
        wait_for=1,
        timeout=60.0,
    )
    try:
        node = next(iter(router.manager.nodes.values()))
        # spawn_local_fleet pins --node-id fleet-node-<i> through the CLI.
        assert node.node_id.startswith("fleet-node-")
    finally:
        router.stop()
