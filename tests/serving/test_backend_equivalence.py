"""Thread and process backends must be semantically interchangeable.

With one worker and lockstep submission both backends drive an identical
clone of the same prototype through the same invocation sequence, so the
outputs must match byte for byte and the quality stats exactly."""

import numpy as np
import pytest

from repro.serving import RumbaServer


def _lockstep(backend, prototype, requests):
    """One worker, one request in flight at a time: a deterministic
    serial schedule on either backend."""
    server = RumbaServer(
        prototype=prototype.clone_shard(),
        backend=backend,
        n_workers=1,
        max_batch_requests=1,
        flush_interval_s=0.0,
    )
    outputs, fixes, degraded = [], [], []
    with server:
        for request in requests:
            result = server.submit_wait(request, timeout=60)
            outputs.append(result.outputs)
            fixes.append(result.fix_fraction)
            degraded.append(result.degraded)
        stats = server.stats()
    return outputs, fixes, degraded, stats


@pytest.fixture(scope="module")
def request_stream(fft_input_pool):
    return [fft_input_pool[i * 48:(i + 1) * 48] for i in range(8)]


class TestBackendEquivalence:
    def test_outputs_byte_identical(self, fft_prototype, request_stream):
        thread_out, _, _, _ = _lockstep("thread", fft_prototype,
                                        request_stream)
        process_out, _, _, _ = _lockstep("process", fft_prototype,
                                         request_stream)
        for a, b in zip(thread_out, process_out):
            assert a.dtype == b.dtype and a.shape == b.shape
            assert a.tobytes() == b.tobytes()

    def test_quality_stats_identical(self, fft_prototype, request_stream):
        _, thread_fix, thread_deg, thread_stats = _lockstep(
            "thread", fft_prototype, request_stream
        )
        _, process_fix, process_deg, process_stats = _lockstep(
            "process", fft_prototype, request_stream
        )
        assert thread_fix == process_fix
        assert thread_deg == process_deg
        tw = thread_stats["workers"][0]
        pw = process_stats["workers"][0]
        for key in ("batches", "elements", "invocations", "threshold",
                    "degradation_level", "drifted", "drift_flags"):
            assert tw[key] == pw[key], key
        for key in ("inflight_requests", "degradation_level", "degraded",
                    "drifted"):
            assert thread_stats[key] == process_stats[key], key

    def test_stats_shape_matches_across_backends(self, fft_prototype,
                                                 request_stream):
        _, _, _, thread_stats = _lockstep("thread", fft_prototype,
                                          request_stream[:2])
        _, _, _, process_stats = _lockstep("process", fft_prototype,
                                           request_stream[:2])
        assert set(thread_stats) == set(process_stats)
        assert (set(thread_stats["workers"][0])
                == set(process_stats["workers"][0]))
