"""ServerConfig redesign tests: validation, the flat-kwarg shim, and the
deprecation contract.

The acceptance bar for the API redesign: legacy
``RumbaServer(max_retries=..., flush_interval_s=...)`` call sites keep
working with *identical behavior* but now emit a DeprecationWarning,
while every invalid combination fails at construction with
:class:`ConfigurationError` — before any thread or process is spawned.
"""

from __future__ import annotations

import warnings

import pytest

from repro.errors import ConfigurationError
from repro.serving import (
    BackpressureConfig,
    BatchingConfig,
    ChaosConfig,
    RetryConfig,
    RumbaServer,
    ServerConfig,
)
from repro.serving.config import replace


class TestSectionValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_batch_requests": 0},
        {"flush_interval_s": -0.001},
        {"admission_capacity": 0},
    ])
    def test_batching_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchingConfig(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"recovery_backlog_capacity": 0},
        {"degrade_factor": 1.0},
        {"max_degradation": 0},
        {"high_watermark": 2, "low_watermark": 4},
        {"low_watermark": -1, "high_watermark": 8},
    ])
    def test_backpressure_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            BackpressureConfig(**kwargs)

    def test_backpressure_watermark_defaults(self):
        config = BackpressureConfig(recovery_backlog_capacity=16)
        assert config.resolved_watermarks() == (8, 2)
        explicit = BackpressureConfig(high_watermark=5, low_watermark=1)
        assert explicit.resolved_watermarks() == (5, 1)

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"default_deadline_s": 0.0},
        {"default_deadline_s": -1.0},
        {"retry_backoff_s": -0.1},
        {"max_worker_restarts": -1},
    ])
    def test_retry_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryConfig(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"n_workers": 0},
        {"n_recovery_workers": 0},
        {"backend": "fiber"},
        {"ring_capacity_bytes": 16},
    ])
    def test_server_config_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServerConfig(**kwargs)

    def test_configs_are_frozen(self):
        config = ServerConfig()
        with pytest.raises(AttributeError):
            config.n_workers = 8
        with pytest.raises(AttributeError):
            config.batching.max_batch_requests = 1

    def test_replace_derives_variants(self):
        base = ServerConfig(n_workers=4)
        quick = replace(
            base, batching=replace(base.batching, flush_interval_s=0.001)
        )
        assert quick.n_workers == 4
        assert quick.batching.flush_interval_s == 0.001
        assert base.batching.flush_interval_s == 0.005  # untouched


class TestFlatShim:
    def test_from_flat_routes_every_legacy_kwarg(self):
        config = ServerConfig.from_flat(
            app="sobel",
            scheme="gaussianEVP",
            n_workers=3,
            backend="process",
            max_batch_requests=16,
            flush_interval_s=0.01,
            admission_capacity=64,
            recovery_backlog_capacity=8,
            high_watermark=6,
            low_watermark=1,
            max_retries=5,
            default_deadline_s=12.0,
            retry_backoff_s=0.2,
            restart_workers=False,
            max_worker_restarts=7,
            seed=11,
        )
        assert config.app == "sobel"
        assert config.scheme == "gaussianEVP"
        assert config.n_workers == 3
        assert config.backend == "process"
        assert config.batching == BatchingConfig(16, 0.01, 64)
        assert config.backpressure.recovery_backlog_capacity == 8
        assert config.backpressure.resolved_watermarks() == (6, 1)
        assert config.retry == RetryConfig(5, 12.0, 0.2, False, 7)
        assert config.seed == 11

    def test_from_flat_rejects_unknown_option(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            ServerConfig.from_flat(n_wrokers=2)

    def test_flat_round_trips(self):
        config = ServerConfig(
            n_workers=5,
            batching=BatchingConfig(max_batch_requests=2),
            retry=RetryConfig(max_retries=9),
        )
        assert ServerConfig.from_flat(**config.flat()) == config

    def test_with_overrides(self):
        base = ServerConfig()
        derived = base.with_overrides(n_workers=7, max_retries=0)
        assert derived.n_workers == 7
        assert derived.retry.max_retries == 0
        assert derived.batching == base.batching


class TestDeprecatedKwargs:
    """Legacy flat kwargs: same behavior, plus a DeprecationWarning."""

    def test_legacy_kwargs_warn_and_behave_identically(self, fft_prototype):
        with pytest.warns(DeprecationWarning, match="ServerConfig"):
            legacy = RumbaServer(
                prototype=fft_prototype.clone_shard(),
                n_workers=1,
                n_recovery_workers=1,
                max_batch_requests=3,
                flush_interval_s=0.004,
                admission_capacity=32,
                max_retries=1,
                default_deadline_s=9.0,
            )
        modern = RumbaServer(
            prototype=fft_prototype.clone_shard(),
            config=ServerConfig(
                n_workers=1,
                n_recovery_workers=1,
                batching=BatchingConfig(
                    max_batch_requests=3,
                    flush_interval_s=0.004,
                    admission_capacity=32,
                ),
                retry=RetryConfig(max_retries=1, default_deadline_s=9.0),
            ),
        )
        assert legacy.config == modern.config
        assert legacy.n_workers == modern.n_workers == 1
        assert legacy.max_retries == modern.max_retries == 1
        legacy.stop()
        modern.stop()

    def test_config_path_does_not_warn(self, fft_prototype):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            server = RumbaServer(
                prototype=fft_prototype.clone_shard(),
                config=ServerConfig(n_workers=1),
            )
        server.stop()

    def test_mixing_config_and_legacy_kwargs_rejected(self):
        with pytest.raises(ConfigurationError, match="not both"):
            RumbaServer(config=ServerConfig(), max_retries=1)

    @pytest.mark.parametrize("kwargs", [
        {"default_deadline_s": -1.0},
        {"max_retries": -1},
        {"backend": "fiber"},
    ])
    def test_legacy_validation_errors_preserved(self, kwargs):
        """Pre-redesign tests assert ConfigurationError for these; the
        shim must keep raising the same type."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ConfigurationError):
                RumbaServer(**kwargs)

    def test_unknown_legacy_kwarg_rejected(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ConfigurationError, match="unknown"):
                RumbaServer(flush_ms=5)

    def test_app_scheme_args_override_config(self, fft_prototype):
        config = ServerConfig(app="sobel", scheme="gaussianEVP")
        server = RumbaServer(app="fft", scheme="treeErrors", config=config)
        assert server.config.app == "fft"
        assert server.config.scheme == "treeErrors"
        server.stop()

    def test_legacy_end_to_end_still_serves(self, fft_prototype,
                                            fft_input_pool):
        with pytest.warns(DeprecationWarning):
            server = RumbaServer(
                prototype=fft_prototype.clone_shard(),
                n_workers=1,
                flush_interval_s=0.002,
            )
        with server:
            result = server.submit_wait(fft_input_pool[:8], timeout=60.0)
        assert result.outputs.shape[0] == 8

    def test_chaos_accepted_through_both_paths(self, fft_prototype):
        chaos = ChaosConfig(fail_prob=0.1, seed=1)
        with pytest.warns(DeprecationWarning):
            legacy = RumbaServer(prototype=fft_prototype.clone_shard(),
                                 chaos=chaos)
        modern = RumbaServer(prototype=fft_prototype.clone_shard(),
                             config=ServerConfig(chaos=chaos))
        assert legacy.config.chaos == modern.config.chaos == chaos
        legacy.stop()
        modern.stop()
