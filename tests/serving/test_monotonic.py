"""Regression guard: serving deadlines are wall-clock independent.

An audit of the serving stack (admission flush deadlines, request
deadline budgets, retry backoff, supervisor restart windows, the network
edge) standardized every time source on ``time.monotonic()``.  The one
legitimate ``time.time()`` in the stack is the tracer's wall-clock span
field, which is observability metadata, not scheduling input.

These tests enforce that invariant the only way that matters: they yank
the wall clock a year in either direction mid-flight and assert the
server still batches, flushes, and meets deadlines.  Any code path that
sneaks ``time.time()`` back into deadline math fails loudly here —
requests would either expire instantly (clock forward) or never flush
(clock backward).
"""

from __future__ import annotations

import time

import pytest

from repro.serving import (
    BatchingConfig,
    RetryConfig,
    RumbaServer,
    ServeRequest,
    ServerConfig,
)

YEAR_S = 3.15e7


@pytest.fixture(params=[-YEAR_S, YEAR_S],
                ids=["clock-back-1y", "clock-fwd-1y"])
def skewed_wall_clock(request, monkeypatch):
    """time.time() lies by a year; time.monotonic() stays honest."""
    real_time = time.time
    monkeypatch.setattr(
        time, "time", lambda: real_time() + request.param
    )
    return request.param


class TestWallClockIndependence:
    def test_serving_survives_wall_clock_skew(
        self, skewed_wall_clock, fft_prototype, fft_input_pool
    ):
        server = RumbaServer(
            prototype=fft_prototype.clone_shard(),
            config=ServerConfig(
                n_workers=1,
                n_recovery_workers=1,
                batching=BatchingConfig(max_batch_requests=4,
                                        flush_interval_s=0.002),
                retry=RetryConfig(default_deadline_s=10.0),
            ),
        )
        with server:
            # A short-deadline request must still complete: if any layer
            # compared a monotonic submission stamp against wall clock,
            # the year of skew would blow the 5 s budget instantly
            # (forward) or make the flush deadline unreachable (back).
            handles = [
                server.submit(fft_input_pool[i: i + 8], deadline_s=5.0)
                for i in range(6)
            ]
            results = [h.result(timeout=30.0) for h in handles]
        assert all(r.outputs.shape[0] == 8 for r in results)
        assert all(0.0 <= r.latency_s < 30.0 for r in results)
        assert all(0.0 <= r.queue_wait_s < 30.0 for r in results)

    def test_request_deadline_is_monotonic_based(self, skewed_wall_clock):
        import numpy as np

        request = ServeRequest(
            request_id=1,
            inputs=np.zeros((1, 1)),
            submitted_at=time.monotonic(),
            deadline_s=5.0,
        )
        expires = request.deadline_at(default_deadline_s=30.0)
        # The expiry lands ~5 s ahead on the monotonic axis, unaffected
        # by the year of wall-clock skew the fixture injected.
        assert 0.0 < expires - time.monotonic() <= 5.0

    def test_tracer_spans_are_monotonic_authoritative(
        self, skewed_wall_clock
    ):
        # Regression for the observability layer: spans used to carry
        # only a wall-clock stamp, which a clock step makes useless for
        # ordering against the serving stack's monotonic stamps.  The
        # monotonic stamp is now authoritative; the wall reading is
        # exported as display-only metadata.
        from repro.observability.tracing import Tracer

        tracer = Tracer()
        tracer.begin_invocation()
        before = time.monotonic()
        with tracer.span("accelerate"):
            pass
        with tracer.span("detect"):
            pass
        after = time.monotonic()
        tracer.end_invocation()
        first, second = tracer.spans
        # Monotonic stamps order correctly despite the year of wall skew:
        # they are bounded by honest monotonic readings taken around them.
        assert before <= first.monotonic_time <= second.monotonic_time
        assert second.monotonic_time <= after
        # The wall stamp follows the (skewed) wall clock — it lives on a
        # different axis and must never be used for ordering math.
        assert abs(first.wall_time - time.time()) < 60.0

    def test_span_export_labels_wall_time_display_only(self):
        from repro.observability.tracing import Span

        span = Span(name="x", invocation=0, start=1.0, end=2.0,
                    monotonic_time=123.0, wall_time=456.0)
        exported = span.to_dict()
        assert exported["monotonic_time"] == 123.0
        assert exported["wall_time_display"] == 456.0
        # No bare "wall_time" key: downstream consumers cannot mistake
        # the display stamp for a schedulable time source.
        assert "wall_time" not in exported

    def test_net_edge_survives_wall_clock_skew(
        self, skewed_wall_clock, fft_prototype, fft_input_pool
    ):
        from repro.serving import NetServer, RumbaClient

        server = RumbaServer(
            prototype=fft_prototype.clone_shard(),
            config=ServerConfig(n_workers=1, n_recovery_workers=1),
        )
        with NetServer(server, "127.0.0.1", 0) as net:
            with RumbaClient(*net.address) as client:
                result = client.submit_wait(
                    fft_input_pool[:8], deadline_s=5.0, timeout=30.0
                )
        assert result.outputs.shape[0] == 8
