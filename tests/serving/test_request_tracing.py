"""End-to-end request tracing through the serving pipeline.

The acceptance bar from the observability PR: a traced request must show
a waterfall of at least six distinct pipeline stages whose segment
durations sum to within 10% of the end-to-end latency — on both
backends, under chaos, and over TCP.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServingError
from repro.observability.flightlog import read_flight_log, stage_segments
from repro.observability.reqtrace import RequestTrace
from repro.serving import (
    BatchingConfig,
    ChaosConfig,
    NetServer,
    RetryConfig,
    RumbaClient,
    RumbaServer,
    ServerConfig,
    TracingConfig,
)

#: The acceptance floor: distinct stages a backend waterfall must show.
MIN_STAGES = 6
#: Stage segments must cover the end-to-end latency within this factor.
COVERAGE_TOLERANCE = 0.10
#: ... or within one scheduler tick, whichever is larger: sub-millisecond
#: requests cannot hold a purely relative bound on a loaded host.
COVERAGE_JITTER_S = 5e-4


def _config(tmp_path, backend="thread", **overrides):
    base = dict(
        backend=backend,
        n_workers=1,
        n_recovery_workers=1,
        batching=BatchingConfig(max_batch_requests=4,
                                flush_interval_s=0.002),
        tracing=TracingConfig(
            sample_every=1,
            flight_log_path=str(tmp_path / "flight.bin"),
        ),
    )
    base.update(overrides)
    return ServerConfig(**base)


def _assert_acceptable_waterfall(record):
    """The ISSUE's acceptance check, applied to one flight record."""
    stages = record["stages"]
    offsets = [offset for _, offset in stages]
    assert offsets == sorted(offsets), f"non-monotonic chain: {stages}"
    distinct = {stage for stage, _ in stages}
    assert len(distinct) >= MIN_STAGES, f"only {sorted(distinct)}"
    covered = sum(duration for _, duration in stage_segments(record))
    latency = record["latency_s"]
    assert covered == pytest.approx(
        latency, rel=COVERAGE_TOLERANCE, abs=COVERAGE_JITTER_S
    ), f"stages cover {covered * 1e3:.3f} ms of {latency * 1e3:.3f} ms"


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_backend_waterfall_acceptance(
    backend, tmp_path, fft_prototype, fft_input_pool
):
    config = _config(tmp_path, backend=backend)
    server = RumbaServer(prototype=fft_prototype.clone_shard(),
                         config=config)
    with server:
        for i in range(6):
            server.submit_wait(fft_input_pool[i * 32:(i + 1) * 32],
                               timeout=60)
        stats = server.stats()
    records = read_flight_log(config.tracing.flight_log_path)
    assert len(records) == 6
    assert stats["tracing"]["enabled"]
    assert stats["tracing"]["flight_records"] >= 5
    for record in records:
        assert record["trace_id"] != 0
        assert record["error"] is None
        _assert_acceptable_waterfall(record)


def test_trace_ids_are_distinct_per_request(
    tmp_path, fft_prototype, fft_input_pool
):
    config = _config(tmp_path)
    server = RumbaServer(prototype=fft_prototype.clone_shard(),
                         config=config)
    with server:
        for i in range(4):
            server.submit_wait(fft_input_pool[i * 16:(i + 1) * 16],
                               timeout=60)
    records = read_flight_log(config.tracing.flight_log_path)
    assert len({r["trace_id"] for r in records}) == len(records) == 4


def test_chaos_soak_traces_stay_coherent(
    tmp_path, fft_prototype, fft_input_pool
):
    """Under injected faults every trace chain stays monotonic, retried
    requests keep ONE trace id across attempts (same object rides
    through the retry path), and the retry promotes the trace to
    sampled.  Unsampled traces skip stage stamping entirely (admit
    aside) until a fault promotes them — the hot path must not pay for
    waterfalls nobody will ever export."""
    config = _config(
        tmp_path,
        chaos=ChaosConfig(fail_prob=0.4, seed=7),
        retry=RetryConfig(max_retries=4, default_deadline_s=60.0,
                          retry_backoff_s=0.001),
    )
    server = RumbaServer(prototype=fft_prototype.clone_shard(),
                         config=config)
    traces = [RequestTrace(sampled=False) for _ in range(24)]
    failed = 0
    with server:
        handles = [
            server.submit(fft_input_pool[i * 8:(i + 1) * 8], trace=trace)
            for i, trace in enumerate(traces)
        ]
        for handle in handles:
            try:
                handle.result(timeout=120)
            except ServingError:
                failed += 1
    retried = [t for t in traces if "retry" in t.stage_names()]
    assert retried, "chaos at fail_prob=0.4 should have forced retries"
    for trace in traces:
        assert trace.is_monotonic()
        assert trace.stage_names().count("complete") <= 1
        if not trace.sampled:
            # Never promoted: the admit stamp is the only event paid for.
            assert set(trace.stage_names()) <= {"admit"}
    for trace in retried:
        assert trace.sampled, "a retry must promote the trace to sampled"
        # Promotion re-enables stamping, so the retried attempt's
        # dispatch and the terminal complete both land in the chain.
        assert "dispatch" in trace.stage_names()
        assert trace.stage_names().count("complete") == 1
    # Each submitted trace id appears at most once in the flight log —
    # attempts fold into one record, they don't duplicate it.
    records = read_flight_log(config.tracing.flight_log_path)
    by_id = [r["trace_id"] for r in records]
    assert len(by_id) == len(set(by_id))
    recorded_retries = [r for r in records if r["attempts"] > 0]
    assert len(recorded_retries) >= len(retried) - failed
    for record in recorded_retries:
        assert "retry" in {stage for stage, _ in record["stages"]}


def test_tcp_lockstep_matches_in_process(
    tmp_path, fft_prototype, fft_input_pool
):
    """A remote caller gets byte-identical outputs AND an equivalent
    trace: the TCP waterfall contains every in-process stage plus the
    net hops, and covers the (server-side) latency just as well."""
    requests = [fft_input_pool[i * 24:(i + 1) * 24] for i in range(5)]
    lockstep = BatchingConfig(max_batch_requests=1, flush_interval_s=0.0)

    local_config = _config(tmp_path / "local", batching=lockstep)
    (tmp_path / "local").mkdir()
    local = RumbaServer(prototype=fft_prototype.clone_shard(),
                        config=local_config)
    local_outputs = []
    with local:
        for block in requests:
            local_outputs.append(local.submit_wait(block, timeout=60).outputs)

    remote_config = _config(tmp_path / "remote", batching=lockstep)
    (tmp_path / "remote").mkdir()
    remote = RumbaServer(prototype=fft_prototype.clone_shard(),
                         config=remote_config)
    remote_outputs = []
    trace_ids = []
    with NetServer(remote, "127.0.0.1", 0) as net:
        with RumbaClient(*net.address, timeout_s=60.0) as client:
            for block in requests:
                result = client.submit_wait(block, trace=True)
                remote_outputs.append(result.outputs)
                assert result.trace_sampled
                trace_ids.append(result.trace_id)

    for a, b in zip(local_outputs, remote_outputs):
        assert a.tobytes() == b.tobytes()

    local_records = read_flight_log(local_config.tracing.flight_log_path)
    remote_records = read_flight_log(remote_config.tracing.flight_log_path)
    assert len(local_records) == len(remote_records) == len(requests)
    for local_rec, remote_rec, trace_id in zip(
        local_records, remote_records, trace_ids
    ):
        assert remote_rec["trace_id"] == trace_id
        local_stages = {stage for stage, _ in local_rec["stages"]}
        remote_stages = {stage for stage, _ in remote_rec["stages"]}
        # The remote pipeline is the local one plus the network edge;
        # net_send post-dates the record by design (docs/observability.md).
        assert remote_stages - local_stages == {"net_recv"}
        _assert_acceptable_waterfall(local_rec)
        _assert_acceptable_waterfall(remote_rec)
