"""Unit tests for the serving buffer pool (lease/release lifecycle,
aliasing isolation, leak accounting under concurrent churn)."""

import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving.bufpool import BufferPool, _size_class


class TestSizeClasses:
    def test_rounds_up_to_power_of_two(self):
        assert _size_class(1) == 64
        assert _size_class(64) == 64
        assert _size_class(65) == 128
        assert _size_class(1000) == 1024

    def test_lease_shapes_and_dtype(self):
        pool = BufferPool()
        for shape in [(5,), (4, 16), (3, 7), (1, 1)]:
            view = pool.lease(shape)
            assert view.shape == shape
            assert view.dtype == np.float64
            assert view.flags.c_contiguous
            pool.release(view)

    def test_int_shape_means_vector(self):
        pool = BufferPool()
        view = pool.lease(12)
        assert view.shape == (12,)
        pool.release(view)

    def test_invalid_shape_raises(self):
        pool = BufferPool()
        with pytest.raises(ConfigurationError):
            pool.lease((0, 4))
        with pytest.raises(ConfigurationError):
            pool.lease((-1,))

    def test_cap_enforced(self):
        pool = BufferPool(max_class_elements=1 << 10)
        with pytest.raises(ConfigurationError, match="exceeds the pool cap"):
            pool.lease((1 << 11,))


class TestLifecycle:
    def test_release_recycles_the_arena(self):
        pool = BufferPool()
        first = pool.lease((8, 8))
        addr = first.__array_interface__["data"][0]
        pool.release(first)
        second = pool.lease((64,))  # same 64-element class
        assert second.__array_interface__["data"][0] == addr
        assert pool.hits == 1
        pool.release(second)

    def test_lease_copy_matches_source(self):
        pool = BufferPool()
        source = np.arange(24.0).reshape(4, 6)
        view = pool.lease_copy(source)
        np.testing.assert_array_equal(view, source)
        view.fill(-1.0)  # the lease is a copy, not an alias
        assert source[0, 0] == 0.0
        pool.release(view)

    def test_double_release_raises(self):
        pool = BufferPool()
        view = pool.lease((4,))
        pool.release(view)
        with pytest.raises(ConfigurationError, match="does not own"):
            pool.release(view)

    def test_foreign_array_release_raises(self):
        pool = BufferPool()
        with pytest.raises(ConfigurationError, match="does not own"):
            pool.release(np.zeros(4))

    def test_outstanding_tracks_live_leases(self):
        pool = BufferPool()
        views = [pool.lease((16,)) for _ in range(5)]
        assert pool.outstanding == 5
        for view in views:
            pool.release(view)
        assert pool.outstanding == 0
        stats = pool.stats()
        assert stats["leases"] == 5
        assert stats["releases"] == 5

    def test_free_list_is_bounded(self):
        pool = BufferPool(max_free_per_class=2)
        views = [pool.lease((64,)) for _ in range(5)]
        for view in views:
            pool.release(view)
        assert pool.stats()["free_arenas"] == 2

    def test_leaked_lease_stays_pinned_for_accounting(self):
        # Regression: the lease table used to map id(view) -> arena
        # without holding the view.  A caller that dropped its lease
        # without releasing let the view be collected, its id() recycled
        # by a later lease, and the table entry silently overwritten —
        # corrupting the leak accounting the pool exists to provide.
        import gc
        import weakref

        pool = BufferPool()
        view = pool.lease((8, 8))
        leaked = weakref.ref(view)
        del view
        gc.collect()
        # The pool itself must pin the leaked view: alive via the table.
        assert leaked() is not None
        assert pool.outstanding == 1
        # Churn fresh leases through the same size class; none may
        # collide with (and clobber) the leaked entry.
        for _ in range(50):
            churn = pool.lease((8, 8))
            pool.release(churn)
        gc.collect()
        assert pool.outstanding == 1
        stats = pool.stats()
        assert stats["leases"] - stats["releases"] == 1
        # The leak is still recoverable through the pinned reference.
        pool.release(leaked())
        assert pool.outstanding == 0


class TestAliasing:
    def test_concurrent_leases_never_share_memory(self):
        # Two live leases of the same size class must come from distinct
        # arenas: writing one leaves the other untouched.
        pool = BufferPool()
        a = pool.lease((8, 8))
        b = pool.lease((8, 8))
        addr = lambda v: v.__array_interface__["data"][0]  # noqa: E731
        assert addr(a) != addr(b)
        a.fill(1.0)
        b.fill(2.0)
        assert np.all(a == 1.0)
        assert np.all(b == 2.0)
        pool.release(a)
        pool.release(b)

    def test_threaded_soak_leaves_no_leaks_or_cross_talk(self):
        # Chaos soak: several threads lease, stamp, verify, and release
        # concurrently.  Any arena shared between two live leases shows up
        # as a corrupted stamp; any pairing bug as outstanding != 0.
        pool = BufferPool(max_free_per_class=8)
        errors = []

        def churn(worker_id):
            rng = np.random.default_rng(worker_id)
            try:
                for i in range(300):
                    rows = int(rng.integers(1, 33))
                    cols = int(rng.integers(1, 17))
                    view = pool.lease((rows, cols))
                    stamp = float(worker_id * 1000 + i)
                    view.fill(stamp)
                    if not np.all(view == stamp):
                        raise AssertionError("lease contents corrupted")
                    pool.release(view)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(w,)) for w in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert pool.outstanding == 0
        stats = pool.stats()
        assert stats["leases"] == stats["releases"] == 6 * 300
        assert stats["hits"] > 0  # recycling actually happened
