"""End-to-end serving: parallel workers, async recovery, lifecycle,
backpressure, and per-worker telemetry."""

import time

import numpy as np
import pytest

from repro.core.stream import DriftDetector
from repro.errors import OverloadedError, ServingError
from repro.observability import MetricsRegistry
from repro.serving import BackpressureController, RumbaServer
from repro.serving.server import WorkerShard


def _server(prototype, **kwargs):
    defaults = dict(
        prototype=prototype.clone_shard(),
        n_workers=2,
        n_recovery_workers=2,
        max_batch_requests=4,
        flush_interval_s=0.002,
    )
    defaults.update(kwargs)
    return RumbaServer(**defaults)


class TestEndToEnd:
    def test_concurrent_requests_across_workers(self, fft_prototype, fft_input_pool):
        registry = MetricsRegistry()
        server = _server(fft_prototype, registry=registry)
        with server:
            # Paced arrivals: the hot path drains a one-shot burst of 48
            # small requests within a single GIL scheduling quantum on a
            # 1-core host, before the second worker thread ever runs.
            # Spreading the submissions over a few quanta keeps this a
            # test of load spreading rather than of thread start latency.
            handles = []
            for i in range(48):
                handles.append(
                    server.submit(fft_input_pool[i * 16:(i + 1) * 16])
                )
                if i % 8 == 7:
                    time.sleep(0.005)
            results = [h.result(timeout=30.0) for h in handles]
        assert len(results) == 48
        assert all(r.outputs.shape == (16, 2) for r in results)
        assert all(np.isfinite(r.outputs).all() for r in results)
        assert all(r.latency_s >= r.queue_wait_s >= 0.0 for r in results)
        # Work actually spread across the pool: every worker shard ran
        # invocations, visible both on the shards and in the per-worker
        # metric series (the PR 1 telemetry registry).
        assert all(s.system.total_invocations > 0 for s in server.shards)
        family = registry.get("rumba_invocations_total")
        series = {labels["worker"]: child.value
                  for labels, child in family.series()}
        assert set(series) == {"w0", "w1"}
        assert all(count > 0 for count in series.values())
        served = registry.get("rumba_serve_requests_total")
        outcomes = {labels["outcome"]: child.value
                    for labels, child in served.series()}
        assert outcomes["accepted"] == 48
        assert outcomes["completed"] == 48

    def test_results_preserve_request_rows(self, fft_prototype, fft_input_pool):
        # Requests of different sizes in one batch come back with their
        # own row counts, in submission slots.
        server = _server(fft_prototype, n_workers=1)
        sizes = [1, 7, 3, 12, 5]
        with server:
            handles = [
                server.submit(fft_input_pool[:n]) for n in sizes
            ]
            results = [h.result(timeout=30.0) for h in handles]
        assert [r.n_elements for r in results] == sizes

    def test_submit_wait_roundtrip(self, fft_prototype, fft_input_pool):
        with _server(fft_prototype) as server:
            result = server.submit_wait(fft_input_pool[:8], timeout=30.0)
        assert result.outputs.shape == (8, 2)
        assert 0.0 <= result.fix_fraction <= 1.0


class TestLifecycle:
    def test_submit_requires_running(self, fft_prototype, fft_input_pool):
        server = _server(fft_prototype)
        with pytest.raises(ServingError):
            server.submit(fft_input_pool[:4])
        with server:
            server.submit_wait(fft_input_pool[:4], timeout=30.0)
        with pytest.raises(ServingError):
            server.submit(fft_input_pool[:4])
        assert server.state == "stopped"

    def test_drain_completes_inflight(self, fft_prototype, fft_input_pool):
        server = _server(fft_prototype)
        server.start()
        handles = [server.submit(fft_input_pool[:8]) for _ in range(12)]
        assert server.drain(timeout=30.0)
        assert all(h.done() for h in handles)
        server.stop()

    def test_stats_shape(self, fft_prototype, fft_input_pool):
        with _server(fft_prototype) as server:
            server.submit_wait(fft_input_pool[:8], timeout=30.0)
            stats = server.stats()
        assert stats["app"] == "fft"
        assert stats["scheme"] == "treeErrors"
        assert stats["inflight_requests"] == 0
        assert stats["degradation_level"] == 0
        assert stats["drifted"] is False
        assert len(stats["workers"]) == 2
        for worker in stats["workers"]:
            assert {"worker", "batches", "threshold", "drifted"} <= set(worker)

    def test_empty_request_rejected(self, fft_prototype):
        with _server(fft_prototype) as server:
            from repro.errors import ConfigurationError

            with pytest.raises(ConfigurationError):
                server.submit(np.empty((0, 1)))


class TestBackpressure:
    def test_bounded_queues_and_degradation(self, fft_prototype, fft_input_pool):
        """Overload must produce shedding + threshold degradation, never
        unbounded queues."""
        registry = MetricsRegistry()
        server = _server(
            fft_prototype,
            registry=registry,
            n_workers=2,
            n_recovery_workers=1,
            max_batch_requests=1,
            admission_capacity=6,
            recovery_backlog_capacity=3,
            high_watermark=1,
            low_watermark=0,
        )
        server.prepare()
        # Make CPU recovery artificially slow so the accelerator side
        # outruns it — the keep-up failure the paper warns about.
        for shard in server.shards:
            shard.system.recovery.verify = False
            original = shard.system.recovery.exact_kernel

            def slow_kernel(x, _orig=original):
                time.sleep(0.01)
                return _orig(x)

            shard.system.recovery.exact_kernel = slow_kernel
        baseline_threshold = server.shards[0].system.tuner.threshold

        server.start()
        handles = []
        shed = 0
        for _ in range(60):
            try:
                handles.append(server.submit(fft_input_pool[:4]))
            except OverloadedError:
                shed += 1
        for handle in handles:
            handle.result(timeout=60.0)
        stats = server.stats()
        server.stop()

        # Bounded admission shed load instead of queueing unboundedly.
        assert shed > 0
        assert stats["requests_shed"] == shed
        # The recovery backlog never outgrew its bound (inline fallback
        # absorbs the overflow).
        assert server._backlog.stats.max_occupancy <= 3
        # Backpressure raised the detection threshold at least once.
        assert server.controller.degrade_events > 0
        peak_threshold = max(
            max(s.system.tuner.history) for s in server.shards
        )
        assert peak_threshold > baseline_threshold
        # And the degradation is visible through the metrics registry.
        gauge = registry.get("rumba_serve_degradation_level")
        assert gauge is not None

    def test_controller_hysteresis_and_reset(self, fft_prototype):
        shard = fft_prototype.clone_shard()
        start = shard.tuner.threshold
        controller = BackpressureController(
            [shard], high_watermark=4, low_watermark=1, factor=2.0,
            max_level=2,
        )
        assert controller.update(10) == +1
        assert controller.update(10) == +1
        assert controller.update(10) == 0  # capped at max_level
        assert controller.level == 2
        assert shard.tuner.threshold == pytest.approx(start * 4.0)
        assert controller.update(3) == 0   # between watermarks: hold
        assert controller.update(1) == -1
        controller.reset()
        assert controller.level == 0
        assert shard.tuner.threshold == pytest.approx(start)
        assert shard.tuner.degradation_level == 0


class TestDrift:
    def test_worker_shard_flags_drift(self):
        import types

        shard = WorkerShard(
            name="w0",
            system=types.SimpleNamespace(telemetry=None),
            drift=DriftDetector(
                calibration_invocations=2, tolerance_sigmas=1.0,
                min_band=0.01, max_band=0.02, smoothing=1.0,
            ),
        )
        assert not shard.observe_drift(0.10)
        assert not shard.observe_drift(0.10)  # calibration done
        assert shard.observe_drift(0.90)
        assert shard.drifted
        assert shard.drift_flags == 1
