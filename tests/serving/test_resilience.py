"""Fault-tolerance integration tests: supervisor restarts, deadline-
budgeted retries, graceful drain, and chaos soaks.

The contract under test (the tentpole of the fault-tolerance layer):
every submitted request either completes exactly once or fails fast with
:class:`ServingError` — no request hangs and none is silently dropped,
no matter what happens to the workers underneath it.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServingError
from repro.serving import ChaosConfig, ProcessWorkerPool, RumbaServer


def _shm_listing():
    return set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()


class TestSupervisorRestart:
    def test_killed_worker_restarts_and_requests_complete(
        self, fft_prototype, fft_input_pool
    ):
        server = RumbaServer(
            prototype=fft_prototype.clone_shard(), backend="process",
            n_workers=2, flush_interval_s=0.001, retry_backoff_s=0.01,
        )
        server.start()
        try:
            handles = [server.submit(fft_input_pool[:16]) for _ in range(8)]
            victim = server.pool.workers[0]
            os.kill(victim.process.pid, signal.SIGKILL)
            handles += [server.submit(fft_input_pool[:16]) for _ in range(8)]
            # Every request completes despite the kill: in-flight batches
            # are re-dispatched, and the dead slot is restarted.
            results = [h.result(timeout=60) for h in handles]
            assert len(results) == 16
            deadline = time.monotonic() + 30
            while not victim.alive() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert victim.alive(), "supervisor never restarted the worker"
            assert victim.restarts >= 1
            stats = server.stats()
            assert stats["worker_restarts"] >= 1
            by_name = {w["worker"]: w for w in stats["workers"]}
            assert by_name[victim.name]["restarts"] >= 1
        finally:
            server.stop()

    def test_restart_reapplies_degradation_level(self, fft_prototype,
                                                 fft_input_pool):
        server = RumbaServer(
            prototype=fft_prototype.clone_shard(), backend="process",
            n_workers=1, flush_interval_s=0.001, retry_backoff_s=0.01,
        )
        server.start()
        try:
            server.submit_wait(fft_input_pool[:8], timeout=60)
            worker = server.pool.workers[0]
            # Pretend the worker last reported one degradation step; the
            # snapshot channel is how the supervisor learns the level.
            worker.snapshot["degradation_level"] = 1
            os.kill(worker.process.pid, signal.SIGKILL)
            # The restarted worker must come back *degraded*, not at
            # nominal quality: its next snapshot reports level >= 1.
            deadline = time.monotonic() + 30
            level = -1
            while time.monotonic() < deadline:
                result = server.submit_wait(fft_input_pool[:8], timeout=60)
                assert result.n_elements == 8
                level = int(worker.snapshot.get("degradation_level", -1))
                if worker.restarts >= 1 and level >= 1:
                    break
                time.sleep(0.01)
            assert worker.restarts >= 1
            assert level >= 1
        finally:
            server.stop()

    def test_restart_telemetry_counter(self, fft_prototype, fft_input_pool):
        server = RumbaServer(
            prototype=fft_prototype.clone_shard(), backend="process",
            n_workers=1, flush_interval_s=0.001, retry_backoff_s=0.01,
        )
        server.start()
        try:
            server.submit_wait(fft_input_pool[:8], timeout=60)
            os.kill(server.pool.workers[0].process.pid, signal.SIGKILL)
            server.submit_wait(fft_input_pool[:8], timeout=60)
        finally:
            server.stop()
        from repro.observability.export import prometheus_text
        text = prometheus_text(server.registry)
        assert "rumba_serve_worker_restarts" in text
        assert "rumba_serve_retries" in text

    def test_max_worker_restarts_bounds_supervision(self, fft_prototype,
                                                    fft_input_pool):
        server = RumbaServer(
            prototype=fft_prototype.clone_shard(), backend="process",
            n_workers=1, flush_interval_s=0.001, retry_backoff_s=0.01,
            max_worker_restarts=0, max_retries=1,
        )
        server.start()
        try:
            server.submit_wait(fft_input_pool[:8], timeout=60)
            os.kill(server.pool.workers[0].process.pid, signal.SIGKILL)
            handle = server.submit(fft_input_pool[:8])
            with pytest.raises(ServingError):
                handle.result(timeout=30)
            assert server.pool.total_restarts == 0
        finally:
            server.stop()


class TestRetryBudget:
    def test_retry_exhaustion_fails_fast(self, fft_prototype,
                                         fft_input_pool):
        # No supervision, one worker, killed: retries burn down to the
        # bound and the caller gets ServingError — never a hang.
        server = RumbaServer(
            prototype=fft_prototype.clone_shard(), backend="process",
            n_workers=1, flush_interval_s=0.001,
            restart_workers=False, max_retries=2, retry_backoff_s=0.01,
        )
        server.start()
        try:
            server.submit_wait(fft_input_pool[:8], timeout=60)
            os.kill(server.pool.workers[0].process.pid, signal.SIGKILL)
            handle = server.submit(fft_input_pool[:8])
            started = time.monotonic()
            with pytest.raises(ServingError, match="attempt"):
                handle.result(timeout=30)
            assert time.monotonic() - started < 25
            assert server.stats()["retries"] >= 1
        finally:
            server.stop()

    def test_deadline_budget_exhaustion(self, fft_prototype,
                                        fft_input_pool):
        # A tiny per-request deadline: the first crash-triggered retry
        # would land past the budget, so the request fails on the
        # deadline branch even though the retry *count* is not exhausted.
        server = RumbaServer(
            prototype=fft_prototype.clone_shard(), backend="process",
            n_workers=1, flush_interval_s=0.001,
            restart_workers=False, max_retries=100, retry_backoff_s=0.2,
            default_deadline_s=0.05,
        )
        server.start()
        try:
            server.submit_wait(fft_input_pool[:8], timeout=60,
                               deadline_s=60.0)
            os.kill(server.pool.workers[0].process.pid, signal.SIGKILL)
            handle = server.submit(fft_input_pool[:8])
            with pytest.raises(ServingError, match="deadline|attempt"):
                handle.result(timeout=30)
        finally:
            server.stop()

    def test_retry_losing_close_race_fails_handle(self, fft_prototype,
                                                  fft_input_pool):
        # Regression for the requeue-vs-close race: a backed-off retry
        # that lands after the admission queue closed must fail its
        # handle with the typed error — the old path let the retry
        # vanish and the submitter hang out its whole deadline budget.
        import heapq
        import threading

        from repro.serving import ServeRequest

        server = RumbaServer(
            prototype=fft_prototype.clone_shard(), n_workers=1,
            flush_interval_s=0.001,
        )
        server.start()
        try:
            server.submit_wait(fft_input_pool[:8], timeout=60)
            request = ServeRequest(
                request_id=10_001,
                inputs=np.array(fft_input_pool[:8]),
                submitted_at=time.monotonic(),
                deadline_s=30.0,
            )
            request.attempts = 1
            # Simulate close() winning: the queue is closed while the
            # retry is still parked in the backoff heap.
            server._admission.close()
            with server._retry_cond:
                server._retry_seq += 1
                heapq.heappush(
                    server._retry_heap,
                    (time.monotonic(), server._retry_seq, request),
                )
                server._retry_cond.notify()
            started = time.monotonic()
            with pytest.raises(ServingError, match="re-queued"):
                request.handle.result(timeout=10.0)
            # Failed fast through the race branch, not via a timeout.
            assert time.monotonic() - started < 5.0
            assert request.handle.done()
        finally:
            server.stop()

    def test_deadline_validation(self, fft_prototype, fft_input_pool):
        server = RumbaServer(prototype=fft_prototype.clone_shard())
        server.start()
        try:
            with pytest.raises(ConfigurationError, match="deadline"):
                server.submit(fft_input_pool[:8], deadline_s=0.0)
        finally:
            server.stop()
        with pytest.raises(ConfigurationError):
            RumbaServer(default_deadline_s=-1.0)
        with pytest.raises(ConfigurationError):
            RumbaServer(max_retries=-1)


class TestStartupHygiene:
    def test_partial_start_failure_leaks_nothing(self, fft_prototype,
                                                 monkeypatch):
        # Make the second worker's Process.start() explode: the pool must
        # dismantle the first worker (process *and* both shm rings) and
        # re-raise, leaving /dev/shm exactly as it was.
        before = _shm_listing()
        pool = ProcessWorkerPool(fft_prototype, n_workers=3)
        spawned = []
        original = pool._ctx.Process

        class _ExplodingProcess:
            def __init__(self, *args, **kwargs):
                if len(spawned) >= 1:
                    raise OSError("synthetic fork failure")
                proc = original(*args, **kwargs)
                spawned.append(proc)
                self._proc = proc

            def __getattr__(self, item):
                return getattr(self._proc, item)

        monkeypatch.setattr(pool._ctx, "Process", _ExplodingProcess)
        with pytest.raises(OSError, match="synthetic fork failure"):
            pool.start()
        assert pool.workers == []
        for proc in spawned:
            proc.join(timeout=10)
            assert not proc.is_alive()
        assert _shm_listing() == before

    def test_restart_refused_before_start_and_after_stop(self,
                                                         fft_prototype):
        pool = ProcessWorkerPool(fft_prototype, n_workers=1)
        pool.start()
        worker = pool.workers[0]
        pool.stop()
        assert not pool.restart_worker(worker)


class TestDrain:
    def test_drain_flushes_in_flight_requests(self, fft_prototype,
                                              fft_input_pool):
        server = RumbaServer(
            prototype=fft_prototype.clone_shard(), backend="process",
            n_workers=2, flush_interval_s=0.05, max_batch_requests=4,
        )
        server.start()
        handles = [server.submit(fft_input_pool[:16]) for _ in range(10)]
        server.drain(timeout=60.0)
        # Every request admitted before the drain completed.
        assert all(h.done() for h in handles)
        results = [h.result(timeout=1) for h in handles]
        assert len(results) == 10
        server.stop()


class TestChaosSoak:
    @pytest.mark.parametrize("backend,spec", [
        ("process", "kill=8,seed=1"),
        ("process", "kill=8,fail=0.05,drop=0.3,corrupt=0.3,seed=2"),
        ("thread", "fail=0.15,seed=3"),
    ])
    def test_exactly_once_under_churn(self, fft_prototype, fft_input_pool,
                                      backend, spec):
        before = _shm_listing()
        server = RumbaServer(
            prototype=fft_prototype.clone_shard(), backend=backend,
            n_workers=2, flush_interval_s=0.001, retry_backoff_s=0.01,
            chaos=ChaosConfig.parse(spec),
        )
        completed = failed = hung = 0
        with server:
            handles = [server.submit(fft_input_pool[:16]) for _ in range(60)]
            for handle in handles:
                try:
                    result = handle.result(timeout=60)
                    assert result.outputs.shape[0] == 16
                    completed += 1
                except ServingError:
                    if handle.done():
                        failed += 1
                    else:
                        hung += 1
            stats = server.stats()
        # The contract: all 60 accounted for, zero hangs, zero drops.
        assert hung == 0
        assert completed + failed == 60
        assert stats["chaos"] is not None
        if backend == "process":
            assert stats["worker_restarts"] >= stats["chaos"]["kills"] - 1
            assert _shm_listing() == before
