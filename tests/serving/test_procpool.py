"""Process-backend lifecycle tests: clean startup/shutdown, crash
surfacing, and the ProcessWorkerPool data path."""

import os
import pickle
import signal
import threading
import time

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import ProcessWorkerPool, RumbaServer
from repro.serving.procpool import _worker_main
from repro.serving.shm import FRAME_BATCH, FRAME_ERROR, FRAME_RESULT, ShmRing


def _wait_frames(pool, worker, n=1, timeout_s=30.0):
    frames = []
    deadline = time.monotonic() + timeout_s
    while len(frames) < n:
        frames.extend(pool.poll(worker))
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"worker produced {len(frames)}/{n} frames in {timeout_s}s"
            )
        time.sleep(0.001)
    return frames


class TestProcessWorkerPool:
    def test_submit_poll_round_trip(self, fft_prototype, fft_input_pool):
        pool = ProcessWorkerPool(fft_prototype, n_workers=1)
        pool.start()
        try:
            worker = pool.workers[0]
            inputs = fft_input_pool[:32]
            pool.submit(worker, seq=0, inputs=inputs)
            pool.submit(worker, seq=1, inputs=inputs)
            frames = _wait_frames(pool, worker, n=2)
            assert [f.seq for f in frames] == [0, 1]
            assert all(f.kind == FRAME_RESULT for f in frames)
            assert frames[0].payload.shape[0] == 32
            # The metrics-snapshot channel: cumulative worker counters.
            import pickle
            snap = pickle.loads(frames[1].extra)
            assert snap["invocations"] == 2
            assert snap["threshold"] > 0
            assert 0.0 <= snap["fire_fraction"] <= 1.0
        finally:
            pool.stop()

    def test_stop_joins_workers(self, fft_prototype):
        pool = ProcessWorkerPool(fft_prototype, n_workers=2)
        pool.start()
        processes = [w.process for w in pool.workers]
        assert all(p.is_alive() for p in processes)
        pool.stop()
        assert all(not p.is_alive() for p in processes)

    def test_submit_to_dead_worker_raises(self, fft_prototype,
                                          fft_input_pool):
        pool = ProcessWorkerPool(fft_prototype, n_workers=1)
        pool.start()
        try:
            worker = pool.workers[0]
            worker.process.terminate()
            worker.process.join(timeout=10)
            with pytest.raises(ServingError):
                pool.submit(worker, seq=0, inputs=fft_input_pool[:8])
        finally:
            pool.stop()

    def test_worker_forwards_batch_errors(self, fft_prototype):
        pool = ProcessWorkerPool(fft_prototype, n_workers=1)
        pool.start()
        try:
            worker = pool.workers[0]
            # Wrong input width: the worker's system raises, and the
            # exception crosses back as a FRAME_ERROR instead of killing
            # the worker.
            pool.submit(worker, seq=0, inputs=np.ones((4, 5)))
            (frame,) = _wait_frames(pool, worker, n=1)
            assert frame.kind == FRAME_ERROR
            exc = ProcessWorkerPool.decode_error(frame)
            assert isinstance(exc, Exception)
            assert worker.process.is_alive()
        finally:
            pool.stop()


class _InterruptingSystem:
    """Picklable stand-in whose invocation raises like a delivered signal."""

    def clone_shard(self):
        return self

    def run_invocation(self, *_args, **_kwargs):
        raise KeyboardInterrupt


class TestWorkerMainInterrupts:
    def test_keyboard_interrupt_kills_worker_loop(self):
        # KeyboardInterrupt/SystemExit must propagate out of the worker
        # loop (killing the process) — NOT be pickled into a FRAME_ERROR
        # like an ordinary batch failure.  A worker that swallows its
        # interrupt can never be stopped by signal.
        in_ring = ShmRing(1 << 12)
        out_ring = ShmRing(1 << 12)
        try:
            in_ring_w = ShmRing.attach(in_ring.name)
            in_ring_w.try_write(FRAME_BATCH, seq=0, payload=np.ones((2, 2)))
            in_ring_w.close()
            caught = []

            def run():
                try:
                    _worker_main(
                        pickle.dumps(_InterruptingSystem()),
                        in_ring.name, out_ring.name, False,
                    )
                except BaseException as exc:  # noqa: BLE001 - the assertion
                    caught.append(exc)

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert len(caught) == 1
            assert isinstance(caught[0], KeyboardInterrupt)
            # No error frame was produced: the interrupt escaped the loop.
            assert out_ring.try_read() is None
        finally:
            for ring in (in_ring, out_ring):
                ring.close()
                ring.unlink()


class TestProcessServerLifecycle:
    def test_clean_start_serve_stop(self, fft_prototype, fft_input_pool):
        server = RumbaServer(
            prototype=fft_prototype.clone_shard(), backend="process",
            n_workers=2, flush_interval_s=0.001,
        )
        with server:
            results = [
                server.submit_wait(fft_input_pool[i * 16:(i + 1) * 16],
                                   timeout=60)
                for i in range(6)
            ]
        assert server.state == "stopped"
        n_outputs = fft_prototype.app.n_outputs
        assert all(r.outputs.shape == (16, n_outputs) for r in results)
        stats = server.stats()
        assert stats["backend"] == "process"
        assert sum(w["invocations"] for w in stats["workers"]) == 6

    def test_worker_crash_surfaces_error_not_hang(self, fft_prototype,
                                                  fft_input_pool):
        # With supervision off, a dead worker's requests must fail fast —
        # never hang.  (The restart path that makes them *succeed* is
        # covered in test_resilience.py.)
        server = RumbaServer(
            prototype=fft_prototype.clone_shard(), backend="process",
            n_workers=1, flush_interval_s=0.001,
            restart_workers=False, max_retries=1, retry_backoff_s=0.01,
        )
        server.start()
        try:
            # Warm the pipeline, then kill the only worker.
            server.submit_wait(fft_input_pool[:8], timeout=60)
            worker = server.pool.workers[0]
            os.kill(worker.process.pid, signal.SIGKILL)
            worker.process.join(timeout=10)
            # In-flight and subsequent requests must fail promptly.
            handle = server.submit(fft_input_pool[:8])
            with pytest.raises(ServingError):
                handle.result(timeout=30)
        finally:
            server.stop()
        assert server.state == "stopped"

    def test_unpicklable_prototype_fails_at_prepare(self, fft_prototype):
        doctored = fft_prototype.clone_shard()
        doctored.recovery.exact_kernel = lambda x: x  # not picklable
        server = RumbaServer(prototype=doctored, backend="process",
                             n_workers=1)
        with pytest.raises(ServingError, match="picklable"):
            server.prepare()

    def test_unknown_backend_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="backend"):
            RumbaServer(backend="fiber")
