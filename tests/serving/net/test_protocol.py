"""Wire-codec unit tests: round trips, then systematic frame fuzzing.

Everything here is pure bytes — no sockets, no server — so the fuzz
cases can enumerate malformed frames exhaustively and assert the codec's
one contract: bad bytes raise :class:`ProtocolError` (and only that),
good bytes round-trip losslessly.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    OverloadedError,
    ProtocolError,
    ServingError,
    WorkerCrashError,
)
from repro.serving.net import protocol as wire


def _frame_blob(frame_type=wire.FT_REQUEST, request_id=7, body=b""):
    """The bytes after the length prefix, as they travel."""
    full = wire.encode_frame(frame_type, request_id, body)
    return full[4:]


class TestRoundTrips:
    def test_frame_envelope(self):
        body = b"payload-bytes"
        blob = wire.encode_frame(wire.FT_RESULT, 12345, body)
        (length,) = struct.unpack_from("<I", blob)
        assert length == len(blob) - 4
        frame = wire.decode_frame(blob[4:])
        assert frame.frame_type == wire.FT_RESULT
        assert frame.request_id == 12345
        assert frame.body == body
        assert frame.type_name == "RESULT"

    def test_request_body(self):
        inputs = np.arange(12, dtype=np.float64).reshape(4, 3)
        body = wire.pack_request(inputs, deadline_s=2.5, scheme="treeErrors")
        out, deadline, scheme, trace_id, force = wire.unpack_request(body)
        np.testing.assert_array_equal(out, inputs)
        assert deadline == 2.5
        assert scheme == "treeErrors"
        assert trace_id == 0
        assert force is False

    def test_request_body_defaults(self):
        body = wire.pack_request(np.zeros((1, 1)))
        out, deadline, scheme, trace_id, force = wire.unpack_request(body)
        assert deadline is None
        assert scheme == ""
        assert out.shape == (1, 1)
        assert trace_id == 0
        assert force is False

    def test_request_trace_block(self):
        body = wire.pack_request(
            np.zeros((1, 1)), trace_id=0xDEADBEEFCAFEF00D, force_sample=True
        )
        _, _, _, trace_id, force = wire.unpack_request(body)
        assert trace_id == 0xDEADBEEFCAFEF00D
        assert force is True

    def test_result_body(self):
        outputs = np.linspace(0.0, 1.0, 10).reshape(5, 2)
        body = wire.pack_result(
            outputs, worker="w3", queue_wait_s=0.001, latency_s=0.25,
            fix_fraction=0.125, degraded=True,
        )
        fields = wire.unpack_result(body)
        np.testing.assert_array_equal(fields["outputs"], outputs)
        assert fields["worker"] == "w3"
        assert fields["queue_wait_s"] == 0.001
        assert fields["latency_s"] == 0.25
        assert fields["fix_fraction"] == 0.125
        assert fields["degraded"] is True
        assert fields["trace_id"] == 0
        assert fields["trace_sampled"] is False

    def test_result_trace_echo(self):
        body = wire.pack_result(
            np.zeros((1, 1)), worker="w0", queue_wait_s=0.0, latency_s=0.0,
            fix_fraction=0.0, degraded=False,
            trace_id=(1 << 63) + 17, trace_sampled=True,
        )
        fields = wire.unpack_result(body)
        assert fields["trace_id"] == (1 << 63) + 17
        assert fields["trace_sampled"] is True

    def test_error_body(self):
        body = wire.pack_error(wire.ERR_OVERLOADED, "queue is full")
        assert wire.unpack_error(body) == (wire.ERR_OVERLOADED,
                                           "queue is full")

    def test_json_body(self):
        doc = {"app": "fft", "nested": {"x": [1, 2, 3]}}
        assert wire.unpack_json(wire.pack_json(doc)) == doc

    def test_full_frame_round_trip_via_decode(self):
        inputs = np.random.default_rng(0).random((8, 2))
        blob = _frame_blob(body=wire.pack_request(inputs, deadline_s=1.0))
        frame = wire.decode_frame(blob)
        assert frame.version == wire.PROTOCOL_VERSION
        out, deadline, _, _, _ = wire.unpack_request(
            frame.body, version=frame.version
        )
        np.testing.assert_array_equal(out, inputs)
        assert deadline == 1.0

    def test_v1_frames_still_accepted(self):
        """Version-1 peers remain speakable: no trace block, same fields."""
        inputs = np.arange(4, dtype=np.float64).reshape(2, 2)
        body = wire.pack_request(inputs, deadline_s=0.5, scheme="s",
                                 version=1)
        blob = wire.encode_frame(wire.FT_REQUEST, 9, body, version=1)
        frame = wire.decode_frame(blob[4:])
        assert frame.version == 1
        out, deadline, scheme, trace_id, force = wire.unpack_request(
            frame.body, version=frame.version
        )
        np.testing.assert_array_equal(out, inputs)
        assert (deadline, scheme, trace_id, force) == (0.5, "s", 0, False)
        # A v1 body must not carry (or tolerate) the v2 trailer.
        v2_body = wire.pack_request(inputs)
        assert len(v2_body) == len(wire.pack_request(inputs, version=1)) + 9
        with pytest.raises(ProtocolError, match="trailing"):
            wire.unpack_request(v2_body, version=1)

    def test_v1_result_round_trip(self):
        body = wire.pack_result(
            np.ones((1, 1)), worker="w", queue_wait_s=0.0, latency_s=0.0,
            fix_fraction=0.0, degraded=False, version=1,
        )
        fields = wire.unpack_result(body, version=1)
        assert fields["trace_id"] == 0
        assert fields["trace_sampled"] is False

    def test_unsupported_encode_version_rejected(self):
        with pytest.raises(ConfigurationError):
            wire.encode_frame(wire.FT_REQUEST, 1, b"", version=99)


class TestErrorMapping:
    @pytest.mark.parametrize("exc,code", [
        (ProtocolError("x"), wire.ERR_PROTOCOL),
        (OverloadedError("x"), wire.ERR_OVERLOADED),
        (WorkerCrashError("x"), wire.ERR_WORKER_CRASH),
        (ConfigurationError("x"), wire.ERR_CONFIGURATION),
        (ServingError("x"), wire.ERR_SERVING),
        (RuntimeError("x"), wire.ERR_INTERNAL),
    ])
    def test_exception_to_code(self, exc, code):
        assert wire.exception_to_code(exc) == code

    @pytest.mark.parametrize("code,exc_type", [
        (wire.ERR_PROTOCOL, ProtocolError),
        (wire.ERR_OVERLOADED, OverloadedError),
        (wire.ERR_WORKER_CRASH, WorkerCrashError),
        (wire.ERR_CONFIGURATION, ConfigurationError),
        (wire.ERR_SERVING, ServingError),
        (wire.ERR_INTERNAL, ServingError),
        (999, ServingError),  # unknown codes degrade to the base class
    ])
    def test_code_to_exception(self, code, exc_type):
        exc = wire.code_to_exception(code, "message")
        assert type(exc) is exc_type
        assert str(exc) == "message"


class TestFrameFuzz:
    """Every malformed mutation must raise ProtocolError — nothing else."""

    def test_truncated_below_minimum(self):
        blob = _frame_blob()
        for cut in range(wire.MIN_FRAME_LENGTH):
            with pytest.raises(ProtocolError, match="truncated"):
                wire.decode_frame(blob[:cut])

    def test_truncated_mid_body(self):
        blob = _frame_blob(body=b"x" * 64)
        # Long enough to carry a CRC, but the CRC can't match the cut.
        with pytest.raises(ProtocolError, match="CRC"):
            wire.decode_frame(blob[:-10])

    def test_bad_magic(self):
        blob = bytearray(_frame_blob())
        struct.pack_into("<I", blob, 0, 0xDEADBEEF)
        self._refresh_crc(blob)
        with pytest.raises(ProtocolError, match="magic"):
            wire.decode_frame(bytes(blob))

    def test_wrong_version(self):
        blob = bytearray(_frame_blob())
        struct.pack_into("<H", blob, 4, wire.PROTOCOL_VERSION + 1)
        self._refresh_crc(blob)
        with pytest.raises(ProtocolError, match="version"):
            wire.decode_frame(bytes(blob))

    def test_unknown_frame_type(self):
        blob = bytearray(_frame_blob())
        struct.pack_into("<H", blob, 6, 250)
        self._refresh_crc(blob)
        with pytest.raises(ProtocolError, match="frame type"):
            wire.decode_frame(bytes(blob))

    def test_corrupted_crc(self):
        blob = bytearray(_frame_blob(body=b"payload"))
        blob[-1] ^= 0xFF
        with pytest.raises(ProtocolError, match="CRC"):
            wire.decode_frame(bytes(blob))

    def test_single_bit_flips_are_detected(self):
        blob = _frame_blob(body=wire.pack_request(np.ones((2, 2))))
        for bit in range(0, len(blob) * 8, 37):  # sampled, still dozens
            mutated = bytearray(blob)
            mutated[bit // 8] ^= 1 << (bit % 8)
            with pytest.raises(ProtocolError):
                wire.decode_frame(bytes(mutated))

    def test_oversized_length_prefix(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            wire.check_frame_length(1 << 31, wire.DEFAULT_MAX_FRAME_BYTES)

    def test_undersized_length_prefix(self):
        with pytest.raises(ProtocolError, match="below minimum"):
            wire.check_frame_length(3, wire.DEFAULT_MAX_FRAME_BYTES)

    def test_request_body_fuzz(self):
        good = wire.pack_request(np.ones((4, 2)), deadline_s=1.0, scheme="t")
        for cut in range(len(good)):
            with pytest.raises(ProtocolError):
                wire.unpack_request(good[:cut])
        with pytest.raises(ProtocolError, match="trailing"):
            wire.unpack_request(good + b"\x00")

    def test_result_body_fuzz(self):
        good = wire.pack_result(np.ones((2, 2)), "w0", 0.0, 0.0, 0.0, False)
        for cut in range(len(good)):
            with pytest.raises(ProtocolError):
                wire.unpack_result(good[:cut])
        with pytest.raises(ProtocolError, match="trailing"):
            wire.unpack_result(good + b"\x00")

    def test_matrix_header_overclaims_rows(self):
        body = bytearray(wire.pack_request(np.ones((2, 2))))
        # The matrix header sits right after deadline + scheme-length.
        struct.pack_into("<II", body, 8 + 2, 1 << 20, 1 << 20)
        with pytest.raises(ProtocolError, match="truncated"):
            wire.unpack_request(bytes(body))

    def test_undecodable_strings_and_json(self):
        bad_str = struct.pack("<H", 2) + b"\xff\xfe"
        with pytest.raises(ProtocolError, match="undecodable"):
            wire.unpack_request(struct.pack("<d", 1.0) + bad_str)
        with pytest.raises(ProtocolError, match="JSON"):
            wire.unpack_json(b"not json at all")
        with pytest.raises(ProtocolError, match="object"):
            wire.unpack_json(b"[1,2,3]")

    @staticmethod
    def _refresh_crc(blob: bytearray) -> None:
        """Recompute the CRC so the mutation under test is what fails."""
        crc = zlib.crc32(bytes(blob[:-4])) & 0xFFFFFFFF
        struct.pack_into("<I", blob, len(blob) - 4, crc)


class TestParseAddress:
    def test_host_port_string(self):
        assert wire.parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)

    def test_tuple_passthrough(self):
        assert wire.parse_address(("localhost", "80")) == ("localhost", 80)

    def test_ipv6_brackets(self):
        assert wire.parse_address("[::1]:9000") == ("::1", 9000)

    @pytest.mark.parametrize("bad", ["nocolon", ":9000", "h:x", 12, None])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            wire.parse_address(bad)
