"""End-to-end tests for the TCP serving edge.

The contract mirrors the in-process one: every request submitted over
the wire completes exactly once or fails fast with the *same typed
exception* an in-process caller would see — and a remote caller
observing the server through the lockstep test gets byte-identical
outputs to an in-process caller driving an identical shard.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    OverloadedError,
    ProtocolError,
    ServingError,
)
from repro import serving
from repro.serving import (
    BatchingConfig,
    ChaosConfig,
    NetServer,
    RetryConfig,
    RumbaClient,
    RumbaServer,
    ServerConfig,
)
from repro.serving.net import AsyncRumbaClient
from repro.serving.net import protocol as wire


def _config(**overrides) -> ServerConfig:
    base = dict(
        n_workers=2,
        n_recovery_workers=1,
        batching=BatchingConfig(max_batch_requests=4,
                                flush_interval_s=0.002),
    )
    base.update(overrides)
    return ServerConfig(**base)


@pytest.fixture()
def net_server(fft_prototype):
    server = RumbaServer(prototype=fft_prototype.clone_shard(),
                         config=_config())
    net = NetServer(server, "127.0.0.1", 0)
    net.start()
    yield net
    net.stop()


@pytest.fixture()
def client(net_server):
    with RumbaClient(*net_server.address) as c:
        yield c


class TestEndToEnd:
    def test_welcome_metadata(self, client, fft_prototype):
        assert client.protocol_version == wire.PROTOCOL_VERSION
        assert client.app == "fft"
        assert client.scheme == "treeErrors"
        assert client.features == int(
            fft_prototype.app.npu_topology.n_inputs
        )

    def test_submit_wait_round_trip(self, client, fft_input_pool):
        result = client.submit_wait(fft_input_pool[:16], deadline_s=30.0)
        assert result.outputs.shape[0] == 16
        assert np.isfinite(result.outputs).all()
        assert result.latency_s > 0
        assert result.worker

    def test_multiplexed_inflight_requests(self, client, fft_input_pool):
        handles = [client.submit(fft_input_pool[i: i + 8])
                   for i in range(40)]
        results = [h.result(60.0) for h in handles]
        assert len(results) == 40
        assert all(r.outputs.shape[0] == 8 for r in results)
        # Multiplexing really happened on one socket: ids are distinct.
        assert len({h.request_id for h in handles}) == 40

    def test_stats_over_the_wire(self, client, fft_input_pool):
        client.submit_wait(fft_input_pool[:8])
        stats = client.stats()
        assert stats["app"] == "fft"
        assert stats["state"] == "running"
        assert stats["requests_offered"] >= 1
        assert isinstance(stats["workers"], list)

    def test_concurrent_client_threads(self, client, fft_input_pool):
        errors = []

        def hammer():
            try:
                for _ in range(10):
                    client.submit_wait(fft_input_pool[:4], timeout=60.0)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_many_connections(self, net_server, fft_input_pool):
        clients = [RumbaClient(*net_server.address) for _ in range(5)]
        try:
            handles = [c.submit(fft_input_pool[:8]) for c in clients]
            for h in handles:
                assert h.result(60.0).outputs.shape[0] == 8
        finally:
            for c in clients:
                c.close()


def _bare_client() -> RumbaClient:
    """A RumbaClient skeleton with a fake socket (no real connection)."""
    client = RumbaClient.__new__(RumbaClient)
    client._send_lock = threading.Lock()
    client._lock = threading.Lock()
    client._closed = False
    client._conn_dead = False
    client._sock = None
    return client


class TestSendSerialization:
    """_send_frame concurrency contract (regression coverage).

    sendall loops over partial send() syscalls with the GIL released,
    so it must run under the send lock or two submitting threads can
    interleave the bytes of their frames mid-stream.
    """

    def test_concurrent_send_frames_never_overlap(self):
        class RecordingSock:
            def __init__(self):
                self.calls = 0
                self.overlaps = 0
                self._inside = False

            def sendall(self, blob):
                if self._inside:
                    self.overlaps += 1
                self._inside = True
                self.calls += 1
                time.sleep(0.002)  # widen the race window
                self._inside = False

        client = _bare_client()
        sock = RecordingSock()
        client._sock = sock
        threads = [
            threading.Thread(target=client._send_frame, args=(b"x" * 64,))
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sock.calls == 8
        assert sock.overlaps == 0

    def test_send_failure_on_stale_socket_spares_new_connection(self):
        from repro.errors import ConnectionLostError

        client = _bare_client()
        fresh = object()

        class StaleSock:
            def sendall(self_, blob):
                # A concurrent reconnect swaps in a healthy socket just
                # as this send fails.
                client._sock = fresh
                raise ConnectionResetError("stale socket")

        client._sock = StaleSock()
        with pytest.raises(ConnectionLostError):
            client._send_frame(b"frame")
        assert client._conn_dead is False


class TestErrorMapping:
    def test_bad_deadline_is_configuration_error(self, client,
                                                 fft_input_pool):
        with pytest.raises(ConfigurationError):
            client.submit_wait(fft_input_pool[:4], deadline_s=-1.0)

    def test_scheme_mismatch_is_configuration_error(self, client,
                                                    fft_input_pool):
        with pytest.raises(ConfigurationError, match="scheme"):
            client.submit_wait(fft_input_pool[:4], scheme="gaussianEVP")

    def test_matching_scheme_is_accepted(self, client, fft_input_pool):
        result = client.submit_wait(fft_input_pool[:4],
                                    scheme="treeErrors")
        assert result.outputs.shape[0] == 4

    def test_overload_round_trips_as_overloaded_error(self, fft_prototype,
                                                      fft_input_pool):
        config = _config(
            n_workers=1,
            batching=BatchingConfig(
                max_batch_requests=1,
                flush_interval_s=0.05,
                admission_capacity=2,
            ),
        )
        server = RumbaServer(prototype=fft_prototype.clone_shard(),
                             config=config)
        with NetServer(server, "127.0.0.1", 0) as net:
            with RumbaClient(*net.address) as client:
                handles = [client.submit(fft_input_pool[:4])
                           for _ in range(40)]
                outcomes = {"completed": 0, "overloaded": 0}
                for handle in handles:
                    try:
                        handle.result(60.0)
                        outcomes["completed"] += 1
                    except OverloadedError:
                        outcomes["overloaded"] += 1
                assert outcomes["overloaded"] > 0
                assert sum(outcomes.values()) == 40


class TestLockstepEquivalence:
    def test_tcp_matches_in_process_byte_for_byte(self, fft_prototype,
                                                  fft_input_pool):
        """The wire adds transport, not semantics: identical sequential
        request streams against identically-cloned shards produce
        byte-identical outputs and matching work counters."""
        config = _config(
            n_workers=1,
            batching=BatchingConfig(max_batch_requests=1,
                                    flush_interval_s=0.0),
        )
        remote = RumbaServer(prototype=fft_prototype.clone_shard(),
                             config=config)
        local = RumbaServer(prototype=fft_prototype.clone_shard(),
                            config=config)
        requests = [fft_input_pool[i * 8: i * 8 + 8] for i in range(12)]
        with NetServer(remote, "127.0.0.1", 0) as net:
            with RumbaClient(*net.address) as client, local:
                for block in requests:
                    via_tcp = client.submit_wait(block, timeout=60.0)
                    in_proc = local.submit_wait(block, timeout=60.0)
                    assert via_tcp.outputs.tobytes() == \
                        in_proc.outputs.tobytes()
                    assert via_tcp.outputs.dtype == in_proc.outputs.dtype
                remote_stats = remote.stats()
                local_stats = local.stats()
        for key in ("requests_offered", "requests_shed", "retries"):
            assert remote_stats[key] == local_stats[key]
        rw, lw = remote_stats["workers"][0], local_stats["workers"][0]
        for key in ("batches", "elements", "invocations", "threshold"):
            assert rw[key] == lw[key]


class TestRawSocketFuzz:
    """Hostile bytes on a live server: typed error, closed connection,
    healthy service afterwards, in-flight gauge back to zero."""

    def _raw(self, net_server):
        sock = socket.create_connection(net_server.address, timeout=10.0)
        # Swallow the WELCOME so subsequent reads see only reactions.
        self._read_frame(sock)
        return sock

    @staticmethod
    def _read_frame(sock):
        def exactly(n):
            buf = b""
            while len(buf) < n:
                chunk = sock.recv(n - len(buf))
                if not chunk:
                    raise ConnectionError("closed")
                buf += chunk
            return buf

        (length,) = struct.unpack("<I", exactly(4))
        return wire.decode_frame(exactly(length))

    def _expect_protocol_error_then_close(self, sock):
        frame = self._read_frame(sock)
        assert frame.frame_type == wire.FT_ERROR
        code, _ = wire.unpack_error(frame.body)
        assert code == wire.ERR_PROTOCOL
        # ... and then EOF: the server hangs up on protocol violations.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            chunk = sock.recv(4096)
            if not chunk:
                return
        pytest.fail("server kept the connection open after a bad frame")

    def test_bad_magic_closes_with_typed_error(self, net_server):
        sock = self._raw(net_server)
        blob = bytearray(wire.encode_frame(wire.FT_STATS, 1))
        struct.pack_into("<I", blob, 4, 0xBADBAD00)
        sock.sendall(bytes(blob))
        self._expect_protocol_error_then_close(sock)
        sock.close()

    def test_wrong_version_closes_with_typed_error(self, net_server):
        sock = self._raw(net_server)
        blob = bytearray(wire.encode_frame(wire.FT_STATS, 1))
        struct.pack_into("<H", blob, 8, 99)
        sock.sendall(bytes(blob))
        self._expect_protocol_error_then_close(sock)
        sock.close()

    def test_corrupted_crc_closes_with_typed_error(self, net_server):
        sock = self._raw(net_server)
        blob = bytearray(wire.encode_frame(
            wire.FT_REQUEST, 1, wire.pack_request(np.ones((2, 1)))
        ))
        blob[-1] ^= 0xFF
        sock.sendall(bytes(blob))
        self._expect_protocol_error_then_close(sock)
        sock.close()

    def test_oversized_length_prefix_rejected_unallocated(self, net_server):
        sock = self._raw(net_server)
        sock.sendall(struct.pack("<I", 1 << 31))
        self._expect_protocol_error_then_close(sock)
        sock.close()

    def test_truncated_frame_then_eof(self, net_server):
        sock = self._raw(net_server)
        good = wire.encode_frame(
            wire.FT_REQUEST, 1, wire.pack_request(np.ones((2, 1)))
        )
        sock.sendall(good[: len(good) // 2])
        sock.close()  # mid-frame EOF must not crash or wedge the server

    def test_result_frame_from_client_is_rejected(self, net_server):
        sock = self._raw(net_server)
        sock.sendall(wire.encode_frame(
            wire.FT_RESULT, 1,
            wire.pack_result(np.ones((1, 1)), "w", 0.0, 0.0, 0.0, False),
        ))
        self._expect_protocol_error_then_close(sock)
        sock.close()

    def test_server_survives_fuzzing_and_serves_clean_clients(
        self, net_server, fft_input_pool
    ):
        for payload in (
            struct.pack("<I", 1 << 31),          # oversized prefix
            struct.pack("<I", 1),                # undersized prefix
            b"\x00" * 3,                         # torn prefix + EOF
            wire.encode_frame(wire.FT_STATS, 1)[:-2],  # torn frame
        ):
            sock = self._raw(net_server)
            sock.sendall(payload)
            sock.close()
        # The service is unharmed: a well-behaved client still works and
        # the in-flight ledger drained back to zero.
        with RumbaClient(*net_server.address) as client:
            result = client.submit_wait(fft_input_pool[:8], timeout=60.0)
            assert result.outputs.shape[0] == 8
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and net_server._inflight:
            time.sleep(0.01)
        assert net_server._inflight == 0


class TestAsyncClient:
    def test_async_round_trip_and_stats(self, net_server, fft_input_pool):
        host, port = net_server.address

        async def scenario():
            async with await AsyncRumbaClient.connect(host, port) as client:
                assert client.app == "fft"
                results = await asyncio.gather(*[
                    client.request(fft_input_pool[i: i + 4],
                                   deadline_s=30.0)
                    for i in range(10)
                ])
                stats = await client.stats()
                return results, stats

        results, stats = asyncio.run(scenario())
        assert len(results) == 10
        assert all(r.outputs.shape[0] == 4 for r in results)
        assert stats["state"] == "running"

    def test_async_typed_errors(self, net_server, fft_input_pool):
        host, port = net_server.address

        async def scenario():
            async with await AsyncRumbaClient.connect(host, port) as client:
                with pytest.raises(ConfigurationError):
                    await client.request(fft_input_pool[:4],
                                         deadline_s=-5.0)

        asyncio.run(scenario())


class TestChaosExactlyOnce:
    def test_every_wire_request_completes_once_or_fails_typed(
        self, fft_prototype, fft_input_pool
    ):
        """Chaos kills under the network edge: the exactly-once ledger
        holds for remote callers too — completed + failed accounts for
        every submission, and nothing hangs."""
        config = _config(
            backend="process",
            n_workers=2,
            retry=RetryConfig(retry_backoff_s=0.01,
                              default_deadline_s=20.0),
            chaos=ChaosConfig(kill_rate=6.0, fail_prob=0.2, seed=3),
        )
        server = RumbaServer(prototype=fft_prototype.clone_shard(),
                             config=config)
        completed, failed = 0, 0
        n_requests = 40
        with NetServer(server, "127.0.0.1", 0) as net:
            with RumbaClient(*net.address) as client:
                handles = []
                for _ in range(n_requests):
                    handles.append(client.submit(fft_input_pool[:16],
                                                 deadline_s=20.0))
                    # Pace the load so the run spans enough wall time for
                    # the Poisson killer to actually fire.
                    time.sleep(0.02)
                for handle in handles:
                    try:
                        result = handle.result(60.0)
                        assert result.outputs.shape[0] == 16
                        completed += 1
                    except ServingError:
                        failed += 1
            stats = server.stats()
        assert completed + failed == n_requests
        assert completed > 0
        chaos_stats = stats["chaos"]
        assert chaos_stats["kills"] + chaos_stats["injected_faults"] >= 1


class TestFacade:
    def test_serve_and_connect(self, fft_input_pool):
        net = serving.serve("fft", listen="127.0.0.1:0")
        try:
            assert isinstance(net, NetServer)
            with serving.connect(net.address) as client:
                result = client.submit_wait(fft_input_pool[:8],
                                            deadline_s=30.0)
                assert result.outputs.shape[0] == 8
        finally:
            net.stop()
        assert net.server.state == "stopped"

    def test_serve_in_process(self, fft_input_pool):
        server = serving.serve(
            "fft", config=ServerConfig(n_workers=1, n_recovery_workers=1)
        )
        try:
            assert isinstance(server, RumbaServer)
            result = server.submit_wait(fft_input_pool[:8])
            assert result.outputs.shape[0] == 8
        finally:
            server.stop()

    def test_connect_rejects_bad_address(self):
        with pytest.raises(ConfigurationError):
            serving.connect("no-port-here")


class TestNetLifecycle:
    def test_address_before_start_raises(self, fft_prototype):
        server = RumbaServer(prototype=fft_prototype.clone_shard(),
                             config=_config())
        net = NetServer(server, "127.0.0.1", 0)
        with pytest.raises(ServingError):
            net.address
        server.stop()

    def test_double_start_raises(self, net_server):
        with pytest.raises(ServingError, match="already started"):
            net_server.start()

    def test_stop_is_idempotent(self, fft_prototype):
        server = RumbaServer(prototype=fft_prototype.clone_shard(),
                             config=_config())
        net = NetServer(server, "127.0.0.1", 0).start()
        net.stop()
        net.stop()
        assert server.state == "stopped"

    def test_metrics_registered(self, net_server, fft_input_pool):
        with RumbaClient(*net_server.address) as client:
            client.submit_wait(fft_input_pool[:8])
        names = {metric["name"]
                 for metric in net_server.server.registry.collect()}
        assert "rumba_net_connections_total" in names
        assert "rumba_net_bytes_total" in names
        assert "rumba_net_inflight_requests" in names
