"""Cross-module integration tests: the full Rumba story, end to end."""

import numpy as np
import pytest

from repro.apps import get_application
from repro.apps.fft import fft_transform
from repro.apps.jpeg import compress_image
from repro.apps.sobel import sobel_image
from repro.apps.datasets import natural_image
from repro.core import RumbaConfig, prepare_system
from repro.eval import evaluate_benchmark, quality_target_analysis


class TestErrorReductionStory:
    """The headline claim on the two cheap benchmarks."""

    @pytest.mark.parametrize("name", ["fft", "inversek2j"])
    def test_rumba_beats_unchecked(self, name):
        system = prepare_system(name, scheme="treeErrors", seed=0)
        rng = np.random.default_rng(31)
        inputs = np.atleast_2d(system.app.test_inputs(rng))[:3000]
        record = system.run_invocation(inputs)
        assert record.measured_error < record.unchecked_error
        # The TOQ threshold (10% per element) keeps residual errors small.
        residual = system.app.element_errors(
            record.outputs, system.app.exact(inputs)
        )
        fixed = record.recovery.recovery_indices
        np.testing.assert_allclose(residual[fixed], 0.0, atol=1e-9)

    def test_scheme_ordering_holds_on_stream(self):
        """Ideal <= treeErrors <= Random in achieved error at equal fixes."""
        evaluation = evaluate_benchmark("inversek2j", seed=0, n_test_cap=4000)
        analyses = quality_target_analysis(evaluation)
        assert analyses["Ideal"].n_fixed <= analyses["treeErrors"].n_fixed
        assert analyses["treeErrors"].n_fixed <= analyses["Random"].n_fixed


class TestWholeApplicationPipelines:
    """Approximate kernels embedded in their real applications."""

    def test_fft_application_spectrum_improves_with_rumba(self):
        """Run a whole FFT with approximate twiddles, then with Rumba-
        repaired twiddles, and compare spectral error."""
        system = prepare_system("fft", scheme="treeErrors", seed=0)
        rng = np.random.default_rng(5)
        signal = rng.normal(size=512)
        exact = fft_transform(signal)

        approx_spectrum = fft_transform(signal, twiddle_fn=system.backend)

        def rumba_twiddles(fractions):
            record = system.run_invocation(fractions, measure_quality=False)
            return record.outputs

        rumba_spectrum = fft_transform(signal, twiddle_fn=rumba_twiddles)
        err_approx = np.linalg.norm(approx_spectrum - exact)
        err_rumba = np.linalg.norm(rumba_spectrum - exact)
        assert err_rumba < err_approx

    def test_sobel_application_edge_map(self):
        system = prepare_system("sobel", scheme="treeErrors", seed=0)
        image = natural_image((64, 64), seed=11, detail=1.5)
        exact_edges = sobel_image(image)

        def rumba_kernel(patches):
            return system.run_invocation(patches, measure_quality=False).outputs

        rumba_edges = sobel_image(image, kernel=rumba_kernel)
        unchecked_edges = sobel_image(image, kernel=system.backend)
        err_rumba = np.abs(rumba_edges - exact_edges).mean()
        err_unchecked = np.abs(unchecked_edges - exact_edges).mean()
        assert err_rumba < err_unchecked

    def test_jpeg_application_reconstruction(self):
        system = prepare_system("jpeg", scheme="treeErrors", seed=0)
        image = natural_image((64, 64), seed=12, detail=1.5)
        exact_recon = compress_image(image)

        def rumba_kernel(blocks):
            return system.run_invocation(blocks, measure_quality=False).outputs

        rumba_recon = compress_image(image, block_fn=rumba_kernel)
        unchecked_recon = compress_image(image, block_fn=system.backend)
        err_rumba = np.abs(rumba_recon - exact_recon).mean()
        err_unchecked = np.abs(unchecked_recon - exact_recon).mean()
        assert err_rumba <= err_unchecked


class TestCrossSchemeConsistency:
    def test_all_schemes_produce_valid_invocations(self):
        rng = np.random.default_rng(17)
        inputs = get_application("fft").test_inputs(rng)[:800]
        for scheme in ("Ideal", "Random", "Uniform", "EMA", "linearErrors",
                       "treeErrors"):
            system = prepare_system("fft", scheme=scheme, seed=0)
            record = system.run_invocation(inputs)
            assert record.outputs.shape == (800, 2)
            assert record.measured_error <= record.unchecked_error + 1e-12

    def test_tuning_threshold_consistency_between_config_and_detection(self):
        config = RumbaConfig(scheme="treeErrors", target_output_quality=0.85)
        system = prepare_system("fft", scheme="treeErrors", config=config,
                                seed=0)
        rng = np.random.default_rng(3)
        system.run_invocation(get_application("fft").test_inputs(rng)[:500])
        assert system.detection.threshold == pytest.approx(0.15)


class TestFaultInjection:
    def test_corrupted_accelerator_outputs_recovered(self):
        """Inject NaN rows into the accelerator output path: detection
        flags them unconditionally and recovery restores exact values."""
        system = prepare_system("fft", scheme="EMA", seed=0)

        class _FaultyBackend:
            """Wraps the trained backend, corrupting a slice of outputs."""

            def __init__(self, inner):
                self._inner = inner
                self.topology = inner.topology

            def features(self, inputs):
                return self._inner.features(inputs)

            def __call__(self, inputs):
                out = self._inner(inputs)
                out[::17] = np.nan  # a stuck-at fault on some elements
                return out

        system.backend = _FaultyBackend(system.backend)
        rng = np.random.default_rng(13)
        inputs = get_application("fft").test_inputs(rng)[:600]
        record = system.run_invocation(inputs)
        # Every corrupted element was flagged and re-executed exactly.
        assert np.all(np.isfinite(record.outputs))
        corrupted = np.zeros(600, dtype=bool)
        corrupted[::17] = True
        assert np.all(record.recovery.recovery_indices is not None)
        flagged = np.zeros(600, dtype=bool)
        flagged[record.recovery.recovery_indices] = True
        assert np.all(flagged[corrupted])


class TestDeterminism:
    def test_same_seed_same_results(self):
        rng_inputs = np.random.default_rng(9)
        inputs = get_application("fft").test_inputs(rng_inputs)[:1000]
        records = []
        for _ in range(2):
            from repro.core.offline import clear_cache

            clear_cache()
            system = prepare_system("fft", scheme="treeErrors", seed=0,
                                    cache=False)
            records.append(system.run_invocation(inputs))
        np.testing.assert_array_equal(records[0].outputs, records[1].outputs)
        assert records[0].measured_error == records[1].measured_error
