"""Cross-module property-based tests on the system's core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.detection import DetectionModule
from repro.core.pipeline import max_keepup_fix_fraction, simulate_pipeline
from repro.core.recovery import merge_outputs
from repro.metrics.analysis import (
    error_after_fixes,
    fixes_required_for_quality,
    rank_by_scores,
)
from repro.predictors.oracle import OraclePredictor

errors_arrays = arrays(
    dtype=float,
    shape=st.integers(2, 120),
    elements=st.floats(0.0, 2.0, allow_nan=False),
)


class TestDetectionRecoveryInvariants:
    @settings(max_examples=40, deadline=None)
    @given(errors_arrays, st.floats(0.0, 2.0))
    def test_detection_fixes_exactly_above_threshold(self, errors, threshold):
        """Detection + merge leaves exactly the below-threshold errors."""
        module = DetectionModule(OraclePredictor(), threshold=threshold)
        result = module.detect(true_errors=errors)
        n = errors.shape[0]
        approx = np.arange(n, dtype=float).reshape(-1, 1)
        exact = approx + errors.reshape(-1, 1)
        merged = merge_outputs(
            approx, exact[result.recovery_bits], np.flatnonzero(result.recovery_bits)
        )
        residual = np.abs(merged - exact).ravel()
        # Fixed elements have zero residual; unfixed retain their errors.
        np.testing.assert_allclose(residual[result.recovery_bits], 0.0)
        # atol absorbs float rounding when errors are denormally small.
        np.testing.assert_allclose(
            residual[~result.recovery_bits], errors[~result.recovery_bits],
            atol=1e-9,
        )
        assert np.all(errors[result.recovery_bits] > threshold)

    @settings(max_examples=40, deadline=None)
    @given(errors_arrays, st.floats(0.01, 0.5))
    def test_fixes_required_achieves_target(self, errors, target):
        """The minimal-prefix search achieves its target and is minimal."""
        scores = errors  # oracle ordering
        n_fixed, achieved = fixes_required_for_quality(scores, errors, target)
        assert achieved <= target + 1e-12
        if n_fixed > 0:
            _, curve = error_after_fixes(scores, errors)
            assert curve[n_fixed - 1] > target  # one fewer would miss

    @settings(max_examples=40, deadline=None)
    @given(errors_arrays)
    def test_oracle_ranking_sorts_errors(self, errors):
        order = rank_by_scores(errors)
        ranked = errors[order]
        assert np.all(np.diff(ranked) <= 1e-12)


class TestPipelineInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(10, 200),
        st.floats(0.05, 0.95),
        st.floats(1.0, 8.0),
    )
    def test_uniform_fixes_below_keepup_never_slow_down(
        self, n, density_scale, speedup
    ):
        """Uniformly spaced fixes at or below 1/speedup keep up."""
        accel, cpu = 1.0, speedup
        limit = max_keepup_fix_fraction(accel, cpu)
        fraction = limit * density_scale
        stride = max(int(np.ceil(1.0 / fraction)), 1)
        bits = np.zeros(n, dtype=bool)
        bits[::stride] = True
        result = simulate_pipeline(bits, accel, cpu)
        assert result.cpu_kept_up

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 100), st.floats(1.5, 20.0))
    def test_fixing_everything_serializes(self, n, cpu):
        """100% fixes degenerate to CPU throughput (no overlap benefit)."""
        result = simulate_pipeline(np.ones(n, dtype=bool), 1.0, cpu)
        assert result.makespan >= n * cpu

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=80))
    def test_makespan_monotone_in_fix_set(self, bits):
        """Adding a fix never shortens the makespan."""
        bits = np.asarray(bits)
        base = simulate_pipeline(bits, 1.0, 3.0)
        if not bits.all():
            more = bits.copy()
            more[int(np.flatnonzero(~bits)[0])] = True
            grown = simulate_pipeline(more, 1.0, 3.0)
            assert grown.makespan >= base.makespan - 1e-9


class TestEndToEndQualityInvariant:
    @settings(max_examples=25, deadline=None)
    @given(errors_arrays, st.floats(0.0, 1.0))
    def test_fixing_any_prefix_never_hurts(self, errors, fraction):
        """Output error after fixing any scheme prefix <= unchecked error."""
        rng = np.random.default_rng(0)
        scores = rng.random(errors.shape[0])
        _, curve = error_after_fixes(scores, errors)
        k = int(round(fraction * errors.shape[0]))
        assert curve[k] <= curve[0] + 1e-12
