"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for argv in (["list"], ["survey"], ["run", "--app", "fft"],
                     ["summary"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_run_requires_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "doom"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "blackscholes" in out and "9->8->1" in out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "re-executable fraction" in out
        assert "histogram" in out

    def test_run_fft(self, capsys):
        assert main(["run", "--app", "fft", "--elements", "1000"]) == 0
        out = capsys.readouterr().out
        assert "Rumba error" in out
        assert "energy savings" in out

    def test_summary_single_app(self, capsys):
        assert main(["summary", "--apps", "fft"]) == 0
        out = capsys.readouterr().out
        assert "error reduction" in out


class TestMonitor:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["monitor", "--app", "sobel"])
        assert args.command == "monitor"
        assert args.invocations == 20
        assert args.export == ""

    def test_monitor_requires_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["monitor"])

    def test_monitor_exports_prometheus(self, capsys, tmp_path):
        export = str(tmp_path / "metrics.prom")
        trace = str(tmp_path / "spans.jsonl")
        assert main([
            "monitor", "--app", "fft", "--invocations", "3",
            "--elements", "400", "--export", export, "--trace", trace,
        ]) == 0
        out = capsys.readouterr().out
        assert "fire rate" in out
        with open(export) as handle:
            text = handle.read()
        assert "# TYPE rumba_fire_rate gauge" in text
        assert "rumba_invocation_latency_seconds_bucket" in text
        assert "rumba_phase_spans_total" in text
        import json

        with open(trace) as handle:
            spans = [json.loads(line) for line in handle]
        # 4 phases + 1 invocation span per invocation.
        assert len(spans) == 3 * 5

    def test_run_with_telemetry_snapshot(self, capsys, tmp_path):
        snapshot = str(tmp_path / "telemetry.json")
        assert main([
            "run", "--app", "fft", "--elements", "500",
            "--telemetry", snapshot,
        ]) == 0
        import json

        with open(snapshot) as handle:
            data = json.load(handle)
        assert "rumba_invocations_total" in data["metrics"]


class TestServe:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--app", "fft"])
        assert args.command == "serve"
        assert args.workers == 2
        assert args.recovery_workers == 1
        assert args.requests == 100
        assert args.batch_requests == 8
        assert args.export == ""

    def test_serve_requires_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_session(self, capsys, tmp_path):
        snapshot = str(tmp_path / "serve.json")
        assert main([
            "serve", "--app", "fft", "--requests", "16", "--workers", "2",
            "--elements", "64", "--flush-ms", "2", "--export", snapshot,
        ]) == 0
        out = capsys.readouterr().out
        assert "completed" in out
        assert "throughput" in out
        assert "w0" in out and "w1" in out
        import json

        with open(snapshot) as handle:
            data = json.load(handle)
        assert "rumba_serve_requests_total" in data["metrics"]
