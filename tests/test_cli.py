"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for argv in (["list"], ["survey"], ["run", "--app", "fft"],
                     ["summary"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_run_requires_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "doom"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "blackscholes" in out and "9->8->1" in out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "re-executable fraction" in out
        assert "histogram" in out

    def test_run_fft(self, capsys):
        assert main(["run", "--app", "fft", "--elements", "1000"]) == 0
        out = capsys.readouterr().out
        assert "Rumba error" in out
        assert "energy savings" in out

    def test_summary_single_app(self, capsys):
        assert main(["summary", "--apps", "fft"]) == 0
        out = capsys.readouterr().out
        assert "error reduction" in out
