"""Unit tests for the EMA output-based detector."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.predictors.ema import EMAPredictor, exponential_moving_average


class TestExponentialMovingAverage:
    def test_constant_sequence_is_fixed_point(self):
        values = np.full(20, 5.0)
        np.testing.assert_allclose(
            exponential_moving_average(values, alpha=0.3), 5.0
        )

    def test_paper_formula(self):
        """EMA = e*alpha + prev*(1-alpha) (Eq. 2)."""
        values = np.array([1.0, 2.0, 3.0])
        alpha = 0.5
        out = exponential_moving_average(values, alpha)
        assert out[0] == pytest.approx(1.0)          # seeded with first value
        assert out[1] == pytest.approx(2 * 0.5 + 1 * 0.5)
        assert out[2] == pytest.approx(3 * 0.5 + out[1] * 0.5)

    def test_initial_seed(self):
        out = exponential_moving_average(np.array([1.0]), 0.5, initial=3.0)
        assert out[0] == pytest.approx(1 * 0.5 + 3 * 0.5)

    def test_alpha_one_tracks_exactly(self):
        values = np.array([4.0, 7.0, -1.0])
        np.testing.assert_allclose(
            exponential_moving_average(values, 1.0), values
        )

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            exponential_moving_average(np.ones(3), 0.0)
        with pytest.raises(ConfigurationError):
            exponential_moving_average(np.ones(3), 1.5)

    def test_empty_sequence(self):
        out = exponential_moving_average(np.empty(0), 0.5)
        assert out.size == 0


class TestEMAPredictor:
    def test_alpha_formula(self):
        """alpha = 2 / (1 + N) from the paper."""
        assert EMAPredictor(history=15).alpha == pytest.approx(2.0 / 16.0)
        assert EMAPredictor(history=1).alpha == pytest.approx(1.0)

    def test_smooth_stream_scores_low(self):
        outputs = np.linspace(0, 1, 100).reshape(-1, 1)
        scores = EMAPredictor(history=9).scores(approx_outputs=outputs)
        assert scores.max() < 0.1

    def test_spike_scores_high(self):
        outputs = np.zeros((50, 1))
        outputs[25] = 10.0
        scores = EMAPredictor(history=9).scores(approx_outputs=outputs)
        assert np.argmax(scores) == 25
        assert scores[25] > 5.0

    def test_needs_outputs(self):
        with pytest.raises(ConfigurationError, match="output-based"):
            EMAPredictor().scores(features=np.ones((5, 2)))

    def test_no_training_needed(self):
        predictor = EMAPredictor()
        assert predictor.is_fitted
        assert not predictor.needs_fit

    def test_multi_output_reduced(self):
        outputs = np.zeros((10, 3))
        outputs[5] = [3.0, 3.0, 3.0]
        scores = EMAPredictor(history=9).scores(approx_outputs=outputs)
        assert np.argmax(scores) == 5

    def test_first_element_scores_zero(self):
        outputs = np.array([[7.0], [7.0]])
        scores = EMAPredictor().scores(approx_outputs=outputs)
        assert scores[0] == 0.0  # EMA seeds on the first element

    def test_invalid_history(self):
        with pytest.raises(ConfigurationError):
            EMAPredictor(history=0)

    def test_single_coefficient(self):
        assert EMAPredictor().coefficient_count() == 1

    def test_empty_stream(self):
        scores = EMAPredictor().scores(approx_outputs=np.empty((0, 1)))
        assert scores.size == 0


class TestEMAStateAcrossInvocations:
    def test_state_carries_across_invocations(self):
        """The EMA is an *online* filter (paper Eq. 2): splitting a stream
        across two invocations must score identically to one invocation —
        the average is not reset at invocation boundaries."""
        outputs = np.linspace(0.0, 4.0, 40).reshape(-1, 1)
        whole = EMAPredictor(history=9).scores(approx_outputs=outputs)
        split = EMAPredictor(history=9)
        first = split.scores(approx_outputs=outputs[:25])
        second = split.scores(approx_outputs=outputs[25:])
        np.testing.assert_allclose(
            np.concatenate([first, second]), whole
        )

    def test_second_invocation_first_element_not_reseeded(self):
        # The resetting bug: element 0 of every invocation scored 0.0
        # (fresh seed), hiding a spike that lands on an invocation
        # boundary.  With carried state it scores against the prior EMA.
        predictor = EMAPredictor(history=9)
        predictor.scores(approx_outputs=np.zeros((20, 1)))
        scores = predictor.scores(approx_outputs=np.array([[10.0]]))
        assert scores[0] == pytest.approx(10.0)

    def test_reset_state_restores_fresh_seeding(self):
        predictor = EMAPredictor(history=9)
        predictor.scores(approx_outputs=np.full((10, 1), 100.0))
        predictor.reset_state()
        scores = predictor.scores(approx_outputs=np.array([[0.0], [0.0]]))
        assert scores[0] == 0.0  # seeded afresh, not vs. the old EMA

    def test_non_finite_values_do_not_poison_state(self):
        predictor = EMAPredictor(history=9)
        outputs = np.array([[1.0], [np.nan], [1.0], [1.0]])
        scores = predictor.scores(approx_outputs=outputs)
        assert np.isnan(scores[1])  # the NaN element itself always fires
        assert np.isfinite(scores[2]) and np.isfinite(scores[3])
        # State stayed finite: the next invocation scores normally.
        follow_up = predictor.scores(approx_outputs=np.array([[1.0]]))
        assert follow_up[0] == pytest.approx(0.0)

    def test_clone_shard_resets_predictor_state(self):
        from repro.core import prepare_system
        prototype = prepare_system("fft", scheme="EMA", seed=0)
        rng = np.random.default_rng(3)
        inputs = np.atleast_2d(prototype.app.test_inputs(rng))[:64]
        prototype.run_invocation(inputs)
        assert prototype.predictor._ema is not None
        shard = prototype.clone_shard()
        # Shards start independent: no EMA state inherited from the
        # prototype's (or a sibling's) output history.
        assert shard.predictor._ema is None
