"""Unit tests for the Ideal oracle and Random/Uniform baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.metrics.analysis import rank_by_scores
from repro.predictors.oracle import OraclePredictor
from repro.predictors.sampling import (
    RandomPredictor,
    UniformPredictor,
    radical_inverse,
)


class TestOracle:
    def test_scores_are_true_errors(self, rng):
        errors = rng.uniform(0, 1, size=100)
        np.testing.assert_array_equal(
            OraclePredictor().scores(true_errors=errors), errors
        )

    def test_needs_true_errors(self):
        with pytest.raises(ConfigurationError):
            OraclePredictor().scores(features=np.ones((3, 1)))

    def test_nonfinite_rejected(self):
        with pytest.raises(ConfigurationError):
            OraclePredictor().scores(true_errors=np.array([1.0, np.nan]))

    def test_topk_by_oracle_is_optimal(self, rng):
        """Fixing Ideal's top-k removes the k largest true errors."""
        errors = rng.uniform(0, 1, size=200)
        scores = OraclePredictor().scores(true_errors=errors)
        top = rank_by_scores(scores)[:20]
        assert set(top) == set(np.argsort(errors)[::-1][:20])


class TestRadicalInverse:
    def test_known_values(self):
        np.testing.assert_allclose(
            radical_inverse(8),
            [0.0, 0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875],
        )

    def test_range(self):
        values = radical_inverse(257)
        assert values.min() >= 0.0 and values.max() < 1.0

    def test_all_distinct(self):
        values = radical_inverse(1024)
        assert np.unique(values).size == 1024

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            radical_inverse(-1)
        with pytest.raises(ConfigurationError):
            radical_inverse(8, base=1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(16, 512), st.floats(0.05, 0.5))
    def test_prefix_selection_uniformly_spread(self, n, fraction):
        """{i : ri(i) < x} is spread: max gap ~ 1/(x) not clumped."""
        values = radical_inverse(n)
        selected = np.flatnonzero(values < fraction)
        if selected.size >= 2:
            gaps = np.diff(selected)
            expected_gap = n / selected.size
            assert gaps.max() <= 2.5 * expected_gap + 1


class TestRandomPredictor:
    def test_scores_in_unit_interval(self):
        scores = RandomPredictor(seed=1).scores(true_errors=np.zeros(50))
        assert scores.shape == (50,)
        assert scores.min() >= 0.0 and scores.max() < 1.0

    def test_different_invocations_differ(self):
        predictor = RandomPredictor(seed=1)
        a = predictor.scores(true_errors=np.zeros(100))
        b = predictor.scores(true_errors=np.zeros(100))
        assert not np.array_equal(a, b)

    def test_seeded_reproducibility(self):
        a = RandomPredictor(seed=5).scores(true_errors=np.zeros(30))
        b = RandomPredictor(seed=5).scores(true_errors=np.zeros(30))
        np.testing.assert_array_equal(a, b)

    def test_length_inferred_from_any_array(self):
        scores = RandomPredictor().scores(features=np.ones((7, 3)))
        assert scores.shape == (7,)

    def test_no_arrays_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomPredictor().scores()


class TestUniformPredictor:
    def test_topk_uniformly_spaced(self):
        scores = UniformPredictor().scores(true_errors=np.zeros(64))
        top8 = np.sort(rank_by_scores(scores)[:8])
        gaps = np.diff(top8)
        assert gaps.max() <= 2 * gaps.min() + 1

    def test_deterministic(self):
        a = UniformPredictor().scores(true_errors=np.zeros(40))
        b = UniformPredictor().scores(true_errors=np.zeros(40))
        np.testing.assert_array_equal(a, b)

    def test_first_element_always_selected_first(self):
        scores = UniformPredictor().scores(true_errors=np.zeros(32))
        assert rank_by_scores(scores)[0] == 0
