"""Unit tests for offline predictor training (the second trainer of Fig. 4)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.predictors import (
    SCHEME_NAMES,
    collect_training_data,
    make_predictor,
    train_all_schemes,
    train_predictor,
)
from repro.predictors.ema import EMAPredictor
from repro.predictors.linear import LinearErrorPredictor, LinearValuePredictor
from repro.predictors.oracle import OraclePredictor
from repro.predictors.tree import DecisionTreeErrorPredictor


class TestCollectTrainingData:
    def test_shapes_consistent(self, fft_app, fft_backend, fft_training_data):
        data = fft_training_data
        n = data.features.shape[0]
        assert data.approx_outputs.shape[0] == n
        assert data.exact_outputs.shape[0] == n
        assert data.errors.shape == (n,)

    def test_errors_match_app_metric(self, fft_app, fft_training_data):
        data = fft_training_data
        recomputed = fft_app.element_errors(data.approx_outputs, data.exact_outputs)
        np.testing.assert_allclose(data.errors, recomputed)

    def test_cap_respected(self, fft_app, fft_backend):
        data = collect_training_data(fft_app, fft_backend, seed=2, n_cap=100)
        assert data.features.shape[0] == 100


class TestMakePredictor:
    @pytest.mark.parametrize(
        "scheme,cls",
        [
            ("Ideal", OraclePredictor),
            ("EMA", EMAPredictor),
            ("linearErrors", LinearErrorPredictor),
            ("treeErrors", DecisionTreeErrorPredictor),
            ("linearValues", LinearValuePredictor),
        ],
    )
    def test_factory_types(self, scheme, cls):
        assert isinstance(make_predictor(scheme), cls)

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            make_predictor("psychic")


class TestTrainPredictor:
    def test_all_schemes_trainable(self, fft_training_data):
        predictors = train_all_schemes(fft_training_data)
        assert set(predictors) == set(SCHEME_NAMES)
        for predictor in predictors.values():
            assert predictor.is_fitted

    def test_evp_trains_on_exact_outputs(self, fft_training_data):
        predictor = train_predictor("linearValues", fft_training_data)
        scores = predictor.scores(
            features=fft_training_data.features,
            approx_outputs=fft_training_data.approx_outputs,
        )
        assert scores.shape == (fft_training_data.features.shape[0],)

    def test_tree_checker_correlates_with_errors(self, fft_training_data):
        """Sanity: the tree checker tracks true errors on fft.

        (The linear checker is benchmark-dependent — fft's error profile is
        non-monotone in its single input, so a linear model carries little
        signal there; Sec. 5.1 makes the same observation.)"""
        data = fft_training_data
        predictor = train_predictor("treeErrors", data)
        scores = predictor.scores(features=data.features)
        correlation = np.corrcoef(scores, data.errors)[0, 1]
        assert correlation > 0.5
