"""Unit tests for linear error predictors (EEP and EVP)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.predictors.linear import LinearErrorPredictor, LinearValuePredictor


class TestLinearErrorPredictor:
    def test_recovers_linear_error_function(self, rng):
        x = rng.uniform(-1, 1, size=(500, 3))
        errors = 0.5 * x[:, 0] - 0.2 * x[:, 1] + 0.8
        predictor = LinearErrorPredictor().fit(x, errors)
        predicted = predictor.scores(features=x)
        np.testing.assert_allclose(predicted, np.maximum(errors, 0), atol=1e-8)

    def test_weights_and_bias_exposed(self, rng):
        x = rng.uniform(0, 1, size=(100, 2))
        errors = x @ np.array([1.0, 2.0]) + 3.0
        predictor = LinearErrorPredictor().fit(x, errors)
        np.testing.assert_allclose(predictor.weights, [1.0, 2.0], atol=1e-8)
        assert predictor.bias == pytest.approx(3.0, abs=1e-8)

    def test_scores_clamped_nonnegative(self, rng):
        x = rng.uniform(0, 1, size=(50, 1))
        errors = rng.uniform(0, 0.01, size=50)
        predictor = LinearErrorPredictor().fit(x, errors)
        scores = predictor.scores(features=np.array([[-100.0]]))
        assert scores[0] >= 0.0

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            LinearErrorPredictor().scores(features=np.ones((2, 2)))

    def test_needs_features(self, rng):
        predictor = LinearErrorPredictor().fit(
            rng.random((10, 2)), rng.random(10)
        )
        with pytest.raises(ConfigurationError, match="input-based"):
            predictor.scores(approx_outputs=np.ones((5, 1)))

    def test_wrong_feature_width(self, rng):
        predictor = LinearErrorPredictor().fit(
            rng.random((10, 2)), rng.random(10)
        )
        with pytest.raises(ConfigurationError):
            predictor.scores(features=np.ones((5, 3)))

    def test_coefficient_count_eq1(self, rng):
        """Eq. 1: N weights plus the constant c."""
        predictor = LinearErrorPredictor().fit(
            rng.random((20, 6)), rng.random(20)
        )
        assert predictor.coefficient_count() == 7

    def test_sample_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            LinearErrorPredictor().fit(np.ones((5, 2)), np.ones(4))

    def test_empty_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearErrorPredictor().fit(np.empty((0, 2)), np.empty(0))


class TestLinearValuePredictor:
    def test_scores_measure_disagreement(self, rng):
        x = rng.uniform(-1, 1, size=(300, 2))
        outputs = (x @ np.array([[1.0], [2.0]])) + 0.5
        predictor = LinearValuePredictor().fit_values(x, outputs)
        # Accelerator perfectly matching the linear model: zero scores.
        scores = predictor.scores(features=x, approx_outputs=outputs)
        np.testing.assert_allclose(scores, 0.0, atol=1e-8)
        # Disagreement of 0.3 everywhere: scores are 0.3.
        scores = predictor.scores(features=x, approx_outputs=outputs + 0.3)
        np.testing.assert_allclose(scores, 0.3, atol=1e-8)

    def test_fit_via_base_api_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="fit_values"):
            LinearValuePredictor().fit(rng.random((10, 2)), rng.random(10))

    def test_needs_both_inputs(self, rng):
        predictor = LinearValuePredictor().fit_values(
            rng.random((10, 2)), rng.random((10, 1))
        )
        with pytest.raises(ConfigurationError):
            predictor.scores(features=np.ones((3, 2)))

    def test_output_width_must_match(self, rng):
        predictor = LinearValuePredictor().fit_values(
            rng.random((10, 2)), rng.random((10, 2))
        )
        with pytest.raises(ConfigurationError):
            predictor.scores(
                features=np.ones((3, 2)), approx_outputs=np.ones((3, 1))
            )

    def test_multi_output_scores_averaged(self, rng):
        x = rng.uniform(0, 1, size=(100, 1))
        outputs = np.column_stack([x[:, 0], 2 * x[:, 0]])
        predictor = LinearValuePredictor().fit_values(x, outputs)
        shifted = outputs + np.array([0.2, 0.4])
        scores = predictor.scores(features=x, approx_outputs=shifted)
        np.testing.assert_allclose(scores, 0.3, atol=1e-8)
