"""Unit and property tests for the decision-tree error predictor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, NotFittedError
from repro.predictors.tree import DecisionTreeErrorPredictor, TreeNode


class TestTreeNode:
    def test_leaf_depth(self):
        assert TreeNode(value=1.0).depth() == 0

    def test_nested_depth(self):
        tree = TreeNode(
            feature=0, threshold=0.5,
            left=TreeNode(value=0.0),
            right=TreeNode(
                feature=0, threshold=0.8,
                left=TreeNode(value=1.0), right=TreeNode(value=2.0),
            ),
        )
        assert tree.depth() == 2
        assert tree.count_nodes() == (2, 3)


class TestDecisionTree:
    def test_fits_step_function(self, rng):
        x = rng.uniform(0, 1, size=(500, 1))
        errors = np.where(x[:, 0] > 0.5, 0.9, 0.1)
        tree = DecisionTreeErrorPredictor(max_depth=3).fit(x, errors)
        predicted = tree.scores(features=x)
        # The quantile-grid CART may fuzz a handful of boundary samples.
        assert np.mean(np.abs(predicted - errors)) < 0.02
        assert np.mean(np.isclose(predicted, errors)) > 0.95

    def test_respects_depth_cap(self, rng):
        x = rng.uniform(0, 1, size=(2000, 2))
        errors = rng.uniform(0, 1, size=2000)  # unlearnable noise
        tree = DecisionTreeErrorPredictor(max_depth=7, min_samples_leaf=2).fit(
            x, errors
        )
        assert tree.depth <= 7

    def test_paper_default_depth_is_7(self):
        assert DecisionTreeErrorPredictor().max_depth == 7

    def test_predictions_within_training_range(self, rng):
        x = rng.uniform(0, 1, size=(300, 2))
        errors = rng.uniform(0.2, 0.8, size=300)
        tree = DecisionTreeErrorPredictor().fit(x, errors)
        scores = tree.scores(features=rng.uniform(-5, 5, size=(100, 2)))
        assert scores.min() >= 0.2 - 1e-9
        assert scores.max() <= 0.8 + 1e-9

    def test_constant_errors_single_leaf(self, rng):
        x = rng.uniform(0, 1, size=(100, 2))
        tree = DecisionTreeErrorPredictor().fit(x, np.full(100, 0.3))
        assert tree.root.is_leaf
        np.testing.assert_allclose(tree.scores(features=x), 0.3)

    def test_min_samples_leaf_respected(self, rng):
        x = rng.uniform(0, 1, size=(40, 1))
        errors = rng.uniform(0, 1, size=40)
        tree = DecisionTreeErrorPredictor(min_samples_leaf=20).fit(x, errors)
        # With 40 samples and min leaf 20 only one split is possible.
        assert tree.depth <= 1

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeErrorPredictor().scores(features=np.ones((2, 2)))

    def test_needs_features(self, rng):
        tree = DecisionTreeErrorPredictor().fit(rng.random((30, 2)), rng.random(30))
        with pytest.raises(ConfigurationError, match="input-based"):
            tree.scores(approx_outputs=np.ones((5, 1)))

    def test_wrong_width(self, rng):
        tree = DecisionTreeErrorPredictor().fit(rng.random((30, 2)), rng.random(30))
        with pytest.raises(ConfigurationError):
            tree.scores(features=np.ones((5, 3)))

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            DecisionTreeErrorPredictor(max_depth=0)
        with pytest.raises(ConfigurationError):
            DecisionTreeErrorPredictor(min_samples_leaf=0)
        with pytest.raises(ConfigurationError):
            DecisionTreeErrorPredictor(n_thresholds=1)

    def test_coefficient_count_matches_structure(self, rng):
        x = rng.uniform(0, 1, size=(400, 2))
        errors = np.where(x[:, 0] > 0.5, 0.9, 0.1)
        tree = DecisionTreeErrorPredictor(max_depth=3).fit(x, errors)
        decisions, leaves = tree.root.count_nodes()
        assert tree.coefficient_count() == 2 * decisions + leaves

    def test_better_than_linear_on_nonmonotone_errors(self, rng):
        """The benchmark-dependence observation: trees capture structure
        linear models cannot (e.g. errors high at both input extremes)."""
        from repro.predictors.linear import LinearErrorPredictor

        x = rng.uniform(-1, 1, size=(1000, 1))
        errors = np.abs(x[:, 0])  # symmetric: linear in x fits poorly
        tree = DecisionTreeErrorPredictor().fit(x, errors)
        linear = LinearErrorPredictor().fit(x, errors)
        tree_mae = np.abs(tree.scores(features=x) - errors).mean()
        linear_mae = np.abs(linear.scores(features=x) - errors).mean()
        assert tree_mae < linear_mae

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 6))
    def test_deeper_trees_fit_no_worse(self, depth):
        rng = np.random.default_rng(depth)
        x = rng.uniform(0, 1, size=(400, 1))
        errors = np.sin(3 * x[:, 0]) ** 2
        shallow = DecisionTreeErrorPredictor(max_depth=depth).fit(x, errors)
        deeper = DecisionTreeErrorPredictor(max_depth=depth + 1).fit(x, errors)
        shallow_sse = np.sum((shallow.scores(features=x) - errors) ** 2)
        deeper_sse = np.sum((deeper.scores(features=x) - errors) ** 2)
        assert deeper_sse <= shallow_sse + 1e-9


class TestVectorizedSplit:
    """The prefix-sum split search must stay deterministic and agree with
    the direct per-threshold SSE computation."""

    def _brute_force_best(self, tree, x, y):
        """Reference O(features x thresholds x n) search with the same
        candidate grid and first-wins tie-breaking."""
        n = y.shape[0]
        yc = y - y.mean()
        base_sse = float(np.sum(yc**2))
        best_gain, best = 1e-12, None
        quantiles = np.linspace(0.0, 1.0, tree.n_thresholds + 2)[1:-1]
        for feature in range(x.shape[1]):
            col = x[:, feature]
            unique = np.unique(col)
            if unique.size <= 4 * tree.n_thresholds:
                thresholds = (unique[:-1] + unique[1:]) / 2.0
            else:
                thresholds = np.unique(np.quantile(col, quantiles))
            for threshold in thresholds:
                mask = col <= threshold
                n_left = int(mask.sum())
                if (n_left < tree.min_samples_leaf
                        or n - n_left < tree.min_samples_leaf):
                    continue
                left, right = yc[mask], yc[~mask]
                sse = (np.sum((left - left.mean()) ** 2)
                       + np.sum((right - right.mean()) ** 2))
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain, best = float(gain), (feature, float(threshold))
        return best

    def test_agrees_with_brute_force(self, rng):
        for trial in range(5):
            x = rng.normal(size=(300, 4))
            y = np.abs(x[:, 0]) + 0.3 * (x[:, 2] > 0.5) + rng.normal(
                scale=0.05, size=300
            )
            tree = DecisionTreeErrorPredictor(max_depth=3)
            got = tree._best_split(x, y)
            want = self._brute_force_best(tree, x, y)
            assert (got is None) == (want is None)
            if got is not None:
                assert got[0] == want[0]
                assert got[1] == pytest.approx(want[1])

    def test_deterministic_across_runs(self, rng):
        x = rng.normal(size=(500, 3))
        y = np.abs(x[:, 1]) + rng.normal(scale=0.1, size=500)
        first = DecisionTreeErrorPredictor(max_depth=7)
        second = DecisionTreeErrorPredictor(max_depth=7)
        first.fit(x, y)
        second.fit(x, y)
        assert first.coefficients() == second.coefficients()

    def test_tie_break_prefers_earliest_candidate(self):
        # Two identical columns: the split must land on feature 0, and on
        # the first of the equal-gain thresholds.
        x = np.repeat(np.arange(40.0), 2).reshape(-1, 1)
        x = np.hstack([x, x])
        y = (x[:, 0] >= 20).astype(float)
        tree = DecisionTreeErrorPredictor(max_depth=1, min_samples_leaf=1)
        feature, threshold = tree._best_split(x, y)
        assert feature == 0
        assert threshold == pytest.approx(19.5)

    def test_duplicate_heavy_column(self, rng):
        # Many repeated values: searchsorted boundaries must stay exact.
        x = rng.integers(0, 4, size=(200, 2)).astype(float)
        y = (x[:, 0] >= 2).astype(float)
        tree = DecisionTreeErrorPredictor(max_depth=2, min_samples_leaf=5)
        tree.fit(x, y)
        pred = tree.scores(features=x)
        assert np.corrcoef(pred, y)[0, 1] > 0.99

    def test_large_offset_targets_stay_stable(self, rng):
        # Centring y guards the prefix-sum SSE identity against
        # catastrophic cancellation under a huge constant offset.
        x = rng.normal(size=(400, 2))
        y = 1e9 + np.abs(x[:, 0])
        tree = DecisionTreeErrorPredictor(max_depth=3)
        split = tree._best_split(x, y)
        assert split is not None
        assert split[0] == 0
