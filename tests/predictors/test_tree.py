"""Unit and property tests for the decision-tree error predictor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, NotFittedError
from repro.predictors.tree import DecisionTreeErrorPredictor, TreeNode


class TestTreeNode:
    def test_leaf_depth(self):
        assert TreeNode(value=1.0).depth() == 0

    def test_nested_depth(self):
        tree = TreeNode(
            feature=0, threshold=0.5,
            left=TreeNode(value=0.0),
            right=TreeNode(
                feature=0, threshold=0.8,
                left=TreeNode(value=1.0), right=TreeNode(value=2.0),
            ),
        )
        assert tree.depth() == 2
        assert tree.count_nodes() == (2, 3)


class TestDecisionTree:
    def test_fits_step_function(self, rng):
        x = rng.uniform(0, 1, size=(500, 1))
        errors = np.where(x[:, 0] > 0.5, 0.9, 0.1)
        tree = DecisionTreeErrorPredictor(max_depth=3).fit(x, errors)
        predicted = tree.scores(features=x)
        # The quantile-grid CART may fuzz a handful of boundary samples.
        assert np.mean(np.abs(predicted - errors)) < 0.02
        assert np.mean(np.isclose(predicted, errors)) > 0.95

    def test_respects_depth_cap(self, rng):
        x = rng.uniform(0, 1, size=(2000, 2))
        errors = rng.uniform(0, 1, size=2000)  # unlearnable noise
        tree = DecisionTreeErrorPredictor(max_depth=7, min_samples_leaf=2).fit(
            x, errors
        )
        assert tree.depth <= 7

    def test_paper_default_depth_is_7(self):
        assert DecisionTreeErrorPredictor().max_depth == 7

    def test_predictions_within_training_range(self, rng):
        x = rng.uniform(0, 1, size=(300, 2))
        errors = rng.uniform(0.2, 0.8, size=300)
        tree = DecisionTreeErrorPredictor().fit(x, errors)
        scores = tree.scores(features=rng.uniform(-5, 5, size=(100, 2)))
        assert scores.min() >= 0.2 - 1e-9
        assert scores.max() <= 0.8 + 1e-9

    def test_constant_errors_single_leaf(self, rng):
        x = rng.uniform(0, 1, size=(100, 2))
        tree = DecisionTreeErrorPredictor().fit(x, np.full(100, 0.3))
        assert tree.root.is_leaf
        np.testing.assert_allclose(tree.scores(features=x), 0.3)

    def test_min_samples_leaf_respected(self, rng):
        x = rng.uniform(0, 1, size=(40, 1))
        errors = rng.uniform(0, 1, size=40)
        tree = DecisionTreeErrorPredictor(min_samples_leaf=20).fit(x, errors)
        # With 40 samples and min leaf 20 only one split is possible.
        assert tree.depth <= 1

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeErrorPredictor().scores(features=np.ones((2, 2)))

    def test_needs_features(self, rng):
        tree = DecisionTreeErrorPredictor().fit(rng.random((30, 2)), rng.random(30))
        with pytest.raises(ConfigurationError, match="input-based"):
            tree.scores(approx_outputs=np.ones((5, 1)))

    def test_wrong_width(self, rng):
        tree = DecisionTreeErrorPredictor().fit(rng.random((30, 2)), rng.random(30))
        with pytest.raises(ConfigurationError):
            tree.scores(features=np.ones((5, 3)))

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            DecisionTreeErrorPredictor(max_depth=0)
        with pytest.raises(ConfigurationError):
            DecisionTreeErrorPredictor(min_samples_leaf=0)
        with pytest.raises(ConfigurationError):
            DecisionTreeErrorPredictor(n_thresholds=1)

    def test_coefficient_count_matches_structure(self, rng):
        x = rng.uniform(0, 1, size=(400, 2))
        errors = np.where(x[:, 0] > 0.5, 0.9, 0.1)
        tree = DecisionTreeErrorPredictor(max_depth=3).fit(x, errors)
        decisions, leaves = tree.root.count_nodes()
        assert tree.coefficient_count() == 2 * decisions + leaves

    def test_better_than_linear_on_nonmonotone_errors(self, rng):
        """The benchmark-dependence observation: trees capture structure
        linear models cannot (e.g. errors high at both input extremes)."""
        from repro.predictors.linear import LinearErrorPredictor

        x = rng.uniform(-1, 1, size=(1000, 1))
        errors = np.abs(x[:, 0])  # symmetric: linear in x fits poorly
        tree = DecisionTreeErrorPredictor().fit(x, errors)
        linear = LinearErrorPredictor().fit(x, errors)
        tree_mae = np.abs(tree.scores(features=x) - errors).mean()
        linear_mae = np.abs(linear.scores(features=x) - errors).mean()
        assert tree_mae < linear_mae

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 6))
    def test_deeper_trees_fit_no_worse(self, depth):
        rng = np.random.default_rng(depth)
        x = rng.uniform(0, 1, size=(400, 1))
        errors = np.sin(3 * x[:, 0]) ** 2
        shallow = DecisionTreeErrorPredictor(max_depth=depth).fit(x, errors)
        deeper = DecisionTreeErrorPredictor(max_depth=depth + 1).fit(x, errors)
        shallow_sse = np.sum((shallow.scores(features=x) - errors) ** 2)
        deeper_sse = np.sum((deeper.scores(features=x) - errors) ** 2)
        assert deeper_sse <= shallow_sse + 1e-9
