"""Unit tests for image-quality helpers (Fig. 2)."""

import numpy as np
import pytest

from repro.apps.datasets import natural_image
from repro.errors import ConfigurationError
from repro.metrics.quality import (
    concentrated_error_image,
    fig2_pair,
    mean_error_fraction,
    psnr,
    quality_from_error,
    spread_error_image,
)


class TestQualityFromError:
    def test_complement(self):
        assert quality_from_error(0.1) == pytest.approx(0.9)

    def test_floors_at_zero(self):
        assert quality_from_error(1.5) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            quality_from_error(-0.1)


class TestMeanErrorFraction:
    def test_identical_images(self):
        img = natural_image((32, 32), seed=0)
        assert mean_error_fraction(img, img) == 0.0

    def test_known_offset(self):
        img = np.full((10, 10), 100.0)
        shifted = img + 25.5
        assert mean_error_fraction(shifted, img) == pytest.approx(0.1)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            mean_error_fraction(np.ones((2, 2)), np.ones((3, 3)))


class TestPsnr:
    def test_identical_is_infinite(self):
        img = natural_image((16, 16), seed=1)
        assert psnr(img, img) == float("inf")

    def test_known_value(self):
        original = np.zeros((10, 10))
        corrupted = np.full((10, 10), 255.0)
        assert psnr(corrupted, original) == pytest.approx(0.0)

    def test_more_noise_lower_psnr(self, rng):
        img = natural_image((32, 32), seed=2)
        light = np.clip(img + rng.normal(0, 2, img.shape), 0, 255)
        heavy = np.clip(img + rng.normal(0, 30, img.shape), 0, 255)
        assert psnr(light, img) > psnr(heavy, img)


class TestFig2Images:
    """The Fig. 2 demonstration: equal average error, unequal quality."""

    def test_pair_has_matched_average_error(self):
        img = natural_image((64, 64), seed=3)
        concentrated, spread, average = fig2_pair(img, 0.10, seed=0)
        err_c = mean_error_fraction(concentrated, img)
        err_s = mean_error_fraction(spread, img)
        assert err_c == pytest.approx(average, abs=1e-6)
        assert err_s == pytest.approx(average, abs=0.01)
        assert 0.04 < average < 0.12  # ~10% of pixels at near-full error

    def test_concentrated_errors_perceptually_worse(self):
        """Same mean error, but concentrated errors crater PSNR."""
        img = natural_image((64, 64), seed=3)
        concentrated, spread, _ = fig2_pair(img, 0.10, seed=0)
        assert psnr(spread, img) > psnr(concentrated, img) + 3.0

    def test_concentrated_touches_only_fraction(self):
        img = natural_image((64, 64), seed=4)
        corrupted = concentrated_error_image(img, 0.10, 1.0, seed=1)
        touched = np.mean(corrupted != img)
        assert touched == pytest.approx(0.10, abs=0.005)

    def test_spread_touches_everything(self):
        img = natural_image((32, 32), seed=5)
        corrupted = spread_error_image(img, 0.10, seed=1)
        assert np.mean(corrupted != img) > 0.99

    def test_validations(self):
        img = natural_image((16, 16), seed=6)
        with pytest.raises(ConfigurationError):
            concentrated_error_image(img, pixel_fraction=1.5)
        with pytest.raises(ConfigurationError):
            spread_error_image(img, pixel_error=-0.1)
