"""Unit and property tests for the scheme-analysis metrics (Figs. 10-13)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigurationError
from repro.metrics.analysis import (
    analyze_scheme_at_target,
    calibrate_threshold,
    error_after_fixes,
    error_cdf,
    error_vs_fixed_curve,
    false_positive_rate,
    fixes_required_for_quality,
    rank_by_scores,
    relative_coverage,
)

error_arrays = arrays(
    dtype=float,
    shape=st.integers(1, 100),
    elements=st.floats(0.0, 1.0, allow_nan=False),
)


class TestErrorCdf:
    def test_fig1_shape(self):
        """Fig. 1: ~80% of elements small errors, a long tail of large ones."""
        rng = np.random.default_rng(0)
        errors = np.concatenate([
            rng.uniform(0.0, 0.1, size=800),   # small errors
            rng.uniform(0.2, 1.0, size=200),   # the tail
        ])
        levels, fractions = error_cdf(errors, levels=np.array([0.1, 1.0]))
        assert fractions[0] == pytest.approx(0.8, abs=0.01)
        assert fractions[1] == pytest.approx(1.0)

    def test_monotone_nondecreasing(self):
        rng = np.random.default_rng(1)
        _, fractions = error_cdf(rng.exponential(size=500))
        assert np.all(np.diff(fractions) >= 0.0)

    def test_default_levels_span_range(self):
        errors = np.array([0.0, 0.5, 2.0])
        levels, fractions = error_cdf(errors)
        assert levels[-1] == pytest.approx(2.0)
        assert fractions[-1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            error_cdf(np.empty(0))


class TestRankByScores:
    def test_highest_first(self):
        order = rank_by_scores(np.array([0.1, 0.9, 0.5]))
        np.testing.assert_array_equal(order, [1, 2, 0])

    def test_stable_on_ties(self):
        order = rank_by_scores(np.array([0.5, 0.5, 0.5]))
        np.testing.assert_array_equal(order, [0, 1, 2])


class TestErrorAfterFixes:
    def test_endpoints(self):
        errors = np.array([0.1, 0.2, 0.3])
        scores = errors.copy()
        n_fixed, curve = error_after_fixes(scores, errors)
        assert curve[0] == pytest.approx(0.2)   # mean error, nothing fixed
        assert curve[-1] == pytest.approx(0.0)  # everything fixed
        assert n_fixed[-1] == 3

    def test_oracle_order_removes_biggest_first(self):
        errors = np.array([0.1, 0.9, 0.5])
        _, curve = error_after_fixes(errors, errors)
        assert curve[1] == pytest.approx((0.1 + 0.5) / 3)

    @settings(max_examples=40, deadline=None)
    @given(error_arrays)
    def test_monotone_nonincreasing_property(self, errors):
        rng = np.random.default_rng(0)
        scores = rng.random(errors.shape[0])
        _, curve = error_after_fixes(scores, errors)
        assert np.all(np.diff(curve) <= 1e-12)

    @settings(max_examples=40, deadline=None)
    @given(error_arrays)
    def test_oracle_dominates_any_scheme_property(self, errors):
        """Ideal's curve lower-bounds every other fixing order."""
        rng = np.random.default_rng(1)
        scores = rng.random(errors.shape[0])
        _, scheme_curve = error_after_fixes(scores, errors)
        _, oracle_curve = error_after_fixes(errors, errors)
        assert np.all(oracle_curve <= scheme_curve + 1e-12)

    def test_mismatched_shapes(self):
        with pytest.raises(ConfigurationError):
            error_after_fixes(np.ones(3), np.ones(4))


class TestErrorVsFixedCurve:
    def test_fractions_sampled(self):
        errors = np.linspace(0, 1, 11)
        curve = error_vs_fixed_curve(errors, errors, [0.0, 0.5, 1.0])
        assert curve[0] == pytest.approx(errors.mean())
        assert curve[2] == pytest.approx(0.0)
        assert curve[1] < curve[0]

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            error_vs_fixed_curve(np.ones(4), np.ones(4), [1.5])


class TestFixesRequired:
    def test_zero_when_already_good(self):
        errors = np.full(10, 0.01)
        n, achieved = fixes_required_for_quality(errors, errors, 0.1)
        assert n == 0
        assert achieved == pytest.approx(0.01)

    def test_counts_minimal_prefix(self):
        errors = np.array([1.0, 0.0, 0.0, 0.0])
        n, achieved = fixes_required_for_quality(errors, errors, 0.1)
        assert n == 1
        assert achieved == 0.0

    def test_bad_scheme_needs_more_fixes(self):
        rng = np.random.default_rng(2)
        errors = rng.uniform(0, 1, size=500)
        anti_scores = -errors  # worst possible ordering
        n_oracle, _ = fixes_required_for_quality(errors, errors, 0.2)
        n_anti, _ = fixes_required_for_quality(anti_scores, errors, 0.2)
        assert n_anti > n_oracle

    def test_negative_target_rejected(self):
        with pytest.raises(ConfigurationError):
            fixes_required_for_quality(np.ones(3), np.ones(3), -0.1)


class TestCalibrateThreshold:
    def test_threshold_selects_required_fixes(self):
        rng = np.random.default_rng(7)
        errors = rng.uniform(0, 0.5, size=400)
        scores = errors + rng.normal(0, 0.02, size=400)  # noisy predictor
        target = 0.1
        threshold = calibrate_threshold(scores, errors, target)
        fixed = scores > threshold
        residual = errors.copy()
        residual[fixed] = 0.0
        assert residual.mean() <= target + 1e-9

    def test_nothing_needed_returns_max_score(self):
        errors = np.full(10, 0.01)
        scores = np.linspace(0, 1, 10)
        threshold = calibrate_threshold(scores, errors, 0.5)
        assert threshold == pytest.approx(1.0)
        assert not np.any(scores > threshold)

    def test_everything_needed(self):
        errors = np.full(4, 1.0)
        scores = np.array([0.1, 0.4, 0.2, 0.3])
        threshold = calibrate_threshold(scores, errors, 0.0)
        assert np.all(scores > threshold)

    def test_threshold_in_score_units(self):
        """Scores on a wildly different scale still calibrate correctly."""
        rng = np.random.default_rng(8)
        errors = rng.uniform(0, 0.5, size=300)
        scores = errors * 1000.0 + 5000.0
        threshold = calibrate_threshold(scores, errors, 0.1)
        assert threshold > 5000.0


class TestFalsePositives:
    def test_oracle_zero(self):
        rng = np.random.default_rng(3)
        errors = rng.uniform(0.2, 1.0, size=100)  # all large
        assert false_positive_rate(errors, errors, 50, 0.1) == 0.0

    def test_random_proportional_to_small_errors(self):
        errors = np.concatenate([np.full(80, 0.01), np.full(20, 0.5)])
        scores = np.linspace(1, 0, 100)  # fixes the first 50 (mostly small)
        fp = false_positive_rate(scores, errors, 50, error_budget=0.1)
        assert fp == pytest.approx(0.5)  # 50 fixed, all small, /100 total

    def test_out_of_range_n_fixed(self):
        with pytest.raises(ConfigurationError):
            false_positive_rate(np.ones(3), np.ones(3), 5, 0.1)


class TestRelativeCoverage:
    def test_ideal_is_one(self):
        rng = np.random.default_rng(4)
        errors = rng.uniform(0, 1, size=200)
        assert relative_coverage(errors, errors, 40, 40) == pytest.approx(1.0)

    def test_bad_scheme_below_one(self):
        rng = np.random.default_rng(5)
        errors = np.concatenate([np.full(150, 0.01), np.full(50, 0.9)])
        random_scores = rng.random(200)
        coverage = relative_coverage(random_scores, errors, 50, 50)
        assert coverage < 1.0

    def test_zero_fixes_edge_cases(self):
        errors = np.full(10, 0.01)
        assert relative_coverage(errors, errors, 0, 0) == 1.0
        assert relative_coverage(errors, errors, 5, 0) == 0.0

    def test_no_large_errors_trivial_coverage(self):
        errors = np.full(10, 0.01)
        assert relative_coverage(errors, errors, 3, 3) == 1.0


class TestAnalyzeSchemeAtTarget:
    def test_bundles_all_quantities(self):
        rng = np.random.default_rng(6)
        errors = rng.uniform(0, 0.5, size=300)
        analysis = analyze_scheme_at_target(
            "Ideal", errors, errors, ideal_n_fixed=50, target_error=0.1
        )
        assert analysis.scheme == "Ideal"
        assert analysis.n_elements == 300
        assert analysis.achieved_error <= 0.1
        assert 0.0 <= analysis.fixed_fraction <= 1.0
        assert analysis.false_positive_fraction == 0.0
