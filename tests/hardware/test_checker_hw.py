"""Unit tests for the checker hardware cost model (Fig. 7 / Fig. 17)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.checker_hw import CheckerCostParams, CheckerModel
from repro.hardware.npu import NPUModel
from repro.nn.mlp import Topology


class TestCheckerModel:
    def test_none_checker_is_free(self):
        checker = CheckerModel("none")
        assert checker.check_energy_pj() == 0.0
        assert checker.check_cycles() == 0.0

    def test_linear_scales_with_inputs(self):
        narrow = CheckerModel("linear", n_inputs=2)
        wide = CheckerModel("linear", n_inputs=64)
        assert wide.check_energy_pj() > narrow.check_energy_pj()
        assert wide.check_cycles() > narrow.check_cycles()

    def test_tree_scales_with_depth(self):
        shallow = CheckerModel("tree", tree_depth=3)
        deep = CheckerModel("tree", tree_depth=7)
        assert deep.check_energy_pj() > shallow.check_energy_pj()
        assert deep.check_cycles() > shallow.check_cycles()

    def test_tree_cycles_sequential(self):
        checker = CheckerModel("tree", tree_depth=7)
        assert checker.check_cycles() == 8.0  # one compare per level + final

    def test_ema_constant_cost(self):
        a = CheckerModel("ema", n_inputs=2)
        b = CheckerModel("ema", n_inputs=64)
        assert a.check_energy_pj() == b.check_energy_pj()
        assert a.check_cycles() == b.check_cycles() == 3.0

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            CheckerModel("quantum")

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            CheckerModel("linear", n_inputs=0)
        with pytest.raises(ConfigurationError):
            CheckerModel("tree", tree_depth=0)

    def test_invalid_throughput(self):
        with pytest.raises(ConfigurationError):
            CheckerCostParams(macs_per_cycle=0.0)

    def test_check_cost_bundles_both(self):
        checker = CheckerModel("linear", n_inputs=4)
        cost = checker.check_cost()
        assert cost.energy_pj == checker.check_energy_pj()
        assert cost.cycles == checker.check_cycles()


class TestAreaModel:
    def test_none_checker_has_no_area(self):
        assert CheckerModel("none").area_gates(100) == 0.0

    def test_buffer_scales_area(self):
        checker = CheckerModel("tree")
        assert checker.area_gates(300) > checker.area_gates(10)

    def test_ema_smallest(self):
        linear = CheckerModel("linear", n_inputs=9).area_gates(10)
        tree = CheckerModel("tree").area_gates(100)
        ema = CheckerModel("ema").area_gates(1)
        assert ema < linear and ema < tree

    def test_negative_words_rejected(self):
        with pytest.raises(ConfigurationError):
            CheckerModel("linear").area_gates(-1)

    def test_checkers_fraction_of_npu(self):
        """The Fig. 7 'light-weight' claim in silicon: every checker is a
        fraction of the PE array it guards."""
        npu = NPUModel()
        for spec in ("9->8->1", "6->4->4->1", "64->16->64"):
            topo = Topology.parse(spec)
            npu_area = npu.area_gates(topo)
            for kind, words in (("linear", topo.n_inputs + 1),
                                ("tree", 200), ("ema", 1)):
                checker = CheckerModel(kind, n_inputs=topo.n_inputs)
                assert checker.area_gates(words) < 0.6 * npu_area


class TestRelativeTime:
    """Fig. 17: checkers finish before the accelerator for every benchmark."""

    def test_fig17_checkers_faster_than_npu(self):
        from repro.apps import all_applications

        npu = NPUModel()
        for app in all_applications():
            topo = app.rumba_topology
            linear = CheckerModel("linear", n_inputs=topo.n_inputs)
            tree = CheckerModel("tree", n_inputs=topo.n_inputs, tree_depth=7)
            assert linear.relative_time(npu, topo) < 1.0, app.name
            assert tree.relative_time(npu, topo) < 1.0, app.name

    def test_relative_time_ratio(self):
        npu = NPUModel()
        topo = Topology.parse("9->8->1")
        checker = CheckerModel("linear", n_inputs=9)
        expected = checker.check_cycles() / npu.invocation_cycles(topo)
        assert checker.relative_time(npu, topo) == pytest.approx(expected)
