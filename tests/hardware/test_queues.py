"""Unit and property tests for the core↔accelerator queue models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.hardware.queues import ConfigQueue, FifoQueue, RecoveryQueue


class TestFifoQueue:
    def test_fifo_order(self):
        q = FifoQueue(capacity=8)
        for i in range(5):
            q.push(i)
        assert [q.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_overflow_strict_raises(self):
        q = FifoQueue(capacity=2)
        q.push(1)
        q.push(2)
        with pytest.raises(SimulationError, match="overflow"):
            q.push(3)
        assert q.stats.stall_events == 1

    def test_overflow_nonstrict_returns_false(self):
        q = FifoQueue(capacity=1, strict=False)
        assert q.push(1)
        assert not q.push(2)
        assert q.stats.stall_events == 1
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            FifoQueue().pop()

    def test_peek(self):
        q = FifoQueue()
        q.push("a")
        q.push("b")
        assert q.peek() == "a"
        assert len(q) == 2  # peek does not consume

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError):
            FifoQueue().peek()

    def test_drain(self):
        q = FifoQueue()
        for i in range(3):
            q.push(i)
        assert q.drain() == [0, 1, 2]
        assert q.is_empty

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FifoQueue(capacity=0)

    def test_max_occupancy_tracked(self):
        q = FifoQueue(capacity=10)
        for i in range(6):
            q.push(i)
        for _ in range(3):
            q.pop()
        q.push(99)
        assert q.stats.max_occupancy == 6
        assert q.stats.occupancy == 4

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(), max_size=40))
    def test_preserves_order_property(self, items):
        q = FifoQueue(capacity=max(len(items), 1))
        for item in items:
            q.push(item)
        assert q.drain() == items


class TestFifoQueueThreaded:
    """Non-raising ops + the concurrency contract the serving layer uses."""

    def test_try_push_never_raises_on_full_strict_queue(self):
        q = FifoQueue(capacity=1, strict=True)
        assert q.try_push("a")
        assert not q.try_push("b")
        assert q.stats.stall_events == 1
        assert len(q) == 1

    def test_try_pop_returns_none_when_empty(self):
        q = FifoQueue()
        assert q.try_pop() is None
        q.push(7)
        assert q.try_pop() == 7
        assert q.try_pop() is None

    def test_concurrent_producers_consumers_lose_nothing(self):
        import threading

        q = FifoQueue(capacity=10_000)
        n_producers, per_producer = 4, 500
        consumed = []
        consumed_lock = threading.Lock()
        done = threading.Event()

        def produce(base):
            for i in range(per_producer):
                q.push(base + i)

        def consume():
            while True:
                item = q.try_pop()
                if item is None:
                    if done.is_set() and q.is_empty:
                        return
                    continue
                with consumed_lock:
                    consumed.append(item)

        consumers = [threading.Thread(target=consume) for _ in range(2)]
        producers = [
            threading.Thread(target=produce, args=(k * per_producer,))
            for k in range(n_producers)
        ]
        for t in consumers + producers:
            t.start()
        for t in producers:
            t.join()
        done.set()
        for t in consumers:
            t.join(timeout=10.0)

        total = n_producers * per_producer
        assert sorted(consumed) == list(range(total))
        assert q.stats.pushes == total
        assert q.stats.pops == total
        assert q.stats.occupancy == 0

    def test_concurrent_try_push_respects_capacity(self):
        import threading

        q = FifoQueue(capacity=32, strict=True)
        accepted = []
        lock = threading.Lock()

        def hammer():
            ok = sum(q.try_push(object()) for _ in range(100))
            with lock:
                accepted.append(ok)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(accepted) == 32
        assert q.stats.max_occupancy == 32
        assert q.stats.stall_events == 400 - 32


class TestRecoveryQueue:
    def test_tracks_pending_recoveries(self):
        q = RecoveryQueue()
        q.push(0, True)
        q.push(1, False)
        q.push(2, True)
        assert q.pending_recoveries == 2
        q.pop()
        assert q.pending_recoveries == 1

    def test_out_of_order_push_rejected(self):
        q = RecoveryQueue()
        q.push(5, True)
        with pytest.raises(SimulationError, match="out of order"):
            q.push(5, False)
        with pytest.raises(SimulationError, match="out of order"):
            q.push(3, True)

    def test_drain_flagged_returns_only_set_bits(self):
        q = RecoveryQueue()
        bits = [True, False, False, True, True]
        for i, bit in enumerate(bits):
            q.push(i, bit)
        assert q.drain_flagged() == [0, 3, 4]
        assert q.is_empty
        assert q.pending_recoveries == 0

    def test_pop_returns_pairs_in_order(self):
        q = RecoveryQueue()
        q.push(10, False)
        q.push(11, True)
        assert q.pop() == (10, False)
        assert q.pop() == (11, True)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=64))
    def test_flagged_matches_input_property(self, bits):
        q = RecoveryQueue(capacity=len(bits))
        for i, bit in enumerate(bits):
            q.push(i, bit)
        expected = [i for i, bit in enumerate(bits) if bit]
        assert q.drain_flagged() == expected


class TestRecoveryQueuePushMany:
    def test_matches_elementwise_pushes(self):
        bits = [True, False, True, True, False]
        bulk = RecoveryQueue(capacity=8)
        loop = RecoveryQueue(capacity=8)
        assert bulk.push_many(range(5), bits) == 5
        for i, bit in enumerate(bits):
            loop.push(i, bit)
        assert [bulk.pop() for _ in range(5)] == [loop.pop() for _ in range(5)]

    def test_bulk_stats_match_elementwise(self):
        bits = [True, True, False]
        bulk = RecoveryQueue(capacity=4)
        bulk.push_many([3, 4, 5], bits)
        assert bulk.stats.pushes == 3
        assert bulk.stats.max_occupancy == 3
        assert bulk.pending_recoveries == 2

    def test_continues_past_last_pushed_id(self):
        q = RecoveryQueue(capacity=16)
        q.push(4, True)
        q.push_many([5, 6], [False, True])
        with pytest.raises(SimulationError, match="out of order"):
            q.push_many([6, 7], [True, True])
        with pytest.raises(SimulationError, match="out of order"):
            q.push_many([10, 10], [True, True])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError, match="equal length"):
            RecoveryQueue().push_many([0, 1], [True])

    def test_empty_push_is_noop(self):
        q = RecoveryQueue()
        assert q.push_many([], []) == 0
        assert q.stats.pushes == 0

    def test_overflow_strict_raises_after_partial_fill(self):
        q = RecoveryQueue(capacity=2, strict=True)
        with pytest.raises(SimulationError, match="overflow"):
            q.push_many(range(4), [True] * 4)
        # The entries that fit were enqueued, exactly like the
        # element-wise loop would have before its own overflow raise.
        assert len(q) == 2
        assert q.stats.stall_events == 1
        assert q.pending_recoveries == 2

    def test_overflow_nonstrict_truncates(self):
        q = RecoveryQueue(capacity=3, strict=False)
        assert q.push_many(range(5), [True] * 5) == 3
        assert q.drain_flagged() == [0, 1, 2]

    def test_accepts_numpy_bits(self):
        q = RecoveryQueue(capacity=8)
        bits = np.array([True, False, True])
        q.push_many(np.arange(3), bits)
        assert q.drain_flagged() == [0, 2]


class TestConfigQueue:
    def test_counts_words(self):
        q = ConfigQueue()
        assert q.send("weights", [1.0, 2.0, 3.0]) == 3
        assert q.send("tree", iter([0.5] * 5)) == 5
        assert q.words_transferred == 8

    def test_payload_log(self):
        q = ConfigQueue()
        q.send("linear", [0.1, 0.2])
        assert q.payloads == [("linear", 2)]
