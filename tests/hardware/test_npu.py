"""Unit tests for the NPU accelerator cost model."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.hardware.npu import NPUConfig, NPUModel
from repro.nn.mlp import Topology


class TestNPUConfig:
    def test_defaults_are_8_pes(self):
        assert NPUConfig().n_pes == 8

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            NPUConfig(n_pes=0)
        with pytest.raises(ConfigurationError):
            NPUConfig(mac_energy_pj=-1.0)
        with pytest.raises(ConfigurationError):
            NPUConfig(queue_words_per_cycle=0.0)


class TestNPUModel:
    def test_cycles_structure(self):
        model = NPUModel()
        topo = Topology.parse("9->8->1")
        cfg = model.config
        expected = (
            math.ceil(72 / 8) + math.ceil(8 / 8)   # MAC issue
            + 9                                     # activations
            + 10 / cfg.queue_words_per_cycle        # queue words
            + cfg.invocation_overhead_cycles
        )
        assert model.invocation_cycles(topo) == pytest.approx(expected)

    def test_energy_structure(self):
        model = NPUModel()
        topo = Topology.parse("2->2->2")
        cfg = model.config
        expected = (
            topo.n_multiply_adds * cfg.mac_energy_pj
            + topo.n_neurons * cfg.activation_energy_pj
            + 4 * cfg.queue_word_energy_pj
            + cfg.invocation_overhead_pj
        )
        assert model.invocation_energy_pj(topo) == pytest.approx(expected)

    def test_bigger_network_costs_more(self):
        model = NPUModel()
        small = Topology.parse("2->2->2")
        big = Topology.parse("18->32->8->2")
        assert model.invocation_cycles(big) > model.invocation_cycles(small)
        assert model.invocation_energy_pj(big) > model.invocation_energy_pj(small)

    def test_more_pes_is_faster_not_cheaper(self):
        topo = Topology.parse("64->16->64")
        few = NPUModel(NPUConfig(n_pes=2))
        many = NPUModel(NPUConfig(n_pes=16))
        assert many.invocation_cycles(topo) < few.invocation_cycles(topo)
        assert many.invocation_energy_pj(topo) == pytest.approx(
            few.invocation_energy_pj(topo)
        )

    def test_table1_topologies_all_costed(self):
        model = NPUModel()
        for spec in (
            "3->8->8->1", "6->8->8->1", "1->1->2", "1->4->4->2", "2->2->2",
            "2->8->2", "18->32->2->2", "18->32->8->2", "64->16->64",
            "6->4->4->1", "6->8->4->1", "9->8->1",
        ):
            topo = Topology.parse(spec)
            assert model.invocation_cycles(topo) > 0
            assert model.invocation_energy_pj(topo) > 0

    def test_invocation_cost_bundles_both(self):
        model = NPUModel()
        topo = Topology.parse("6->4->4->1")
        cost = model.invocation_cost(topo)
        assert cost.cycles == model.invocation_cycles(topo)
        assert cost.energy_pj == model.invocation_energy_pj(topo)

    def test_area_scales_with_weights(self):
        model = NPUModel()
        small = Topology.parse("2->2->2")
        big = Topology.parse("64->16->64")
        assert model.area_gates(big) > model.area_gates(small)

    def test_area_includes_pe_array(self):
        few = NPUModel(NPUConfig(n_pes=2))
        many = NPUModel(NPUConfig(n_pes=16))
        topo = Topology.parse("9->8->1")
        assert many.area_gates(topo) > few.area_gates(topo)

    def test_rumba_topology_never_slower_than_npu(self):
        """Table 1: Rumba's networks are smaller or equal, so cheaper."""
        from repro.apps import all_applications

        model = NPUModel()
        for app in all_applications():
            assert model.invocation_cycles(app.rumba_topology) <= (
                model.invocation_cycles(app.npu_topology)
            )
            assert model.invocation_energy_pj(app.rumba_topology) <= (
                model.invocation_energy_pj(app.npu_topology)
            )
