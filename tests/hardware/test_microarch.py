"""Unit tests for the Table 2 microarchitecture parameters."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.microarch import TABLE2_X86_64, MicroArchParams


class TestTable2:
    def test_paper_values(self):
        p = TABLE2_X86_64
        assert p.fetch_width == 4
        assert p.issue_width == 6
        assert p.int_alus == 2 and p.fpus == 2
        assert p.issue_queue_entries == 32
        assert p.rob_entries == 96
        assert p.int_physical_registers == 256
        assert p.fp_physical_registers == 256
        assert p.btb_entries == 2048
        assert p.ras_entries == 16
        assert p.load_queue_entries == 48
        assert p.store_queue_entries == 48
        assert p.l1_icache_bytes == 32 * 1024
        assert p.l1_dcache_bytes == 32 * 1024
        assert p.l1_hit_latency_cycles == 3
        assert p.l2_hit_latency_cycles == 12
        assert p.l1_associativity == 8
        assert p.itlb_entries == 128
        assert p.dtlb_entries == 256
        assert p.l2_bytes == 2 * 1024 * 1024
        assert p.branch_predictor == "tournament"

    def test_as_table_matches_paper_layout(self):
        table = TABLE2_X86_64.as_table()
        assert table["Fetch/Issue width"] == "4/6"
        assert table["INT ALUs/FPUs"] == "2/2"
        assert table["ROB Entries"] == 96
        assert table["L1 iCache"] == "32KB"
        assert table["L1/L2 Hit Latency"] == "3/12 cycles"
        assert table["L2 Size"] == "2 MB"
        assert table["Branch Predictor"] == "Tournament"
        assert table["ITLB/DTLB Entries"] == "128/256"
        assert table["Load/Store Queue Entries"] == "48/48"

    def test_immutable(self):
        with pytest.raises(AttributeError):
            TABLE2_X86_64.rob_entries = 128

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            MicroArchParams(rob_entries=0)
        with pytest.raises(ConfigurationError):
            MicroArchParams(clock_ghz=-1.0)

    def test_custom_config(self):
        p = MicroArchParams(issue_width=4, l2_bytes=1024 * 1024)
        assert p.issue_width == 4
        assert p.as_table()["L2 Size"] == "1 MB"
