"""Unit and property tests for the CPU energy/timing model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hardware.energy import CostBreakdown, EnergyModel, InstructionMix

counts = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)
mixes = st.builds(
    InstructionMix,
    int_ops=counts, fp_ops=counts, loads=counts,
    stores=counts, branches=counts, transcendentals=counts,
)


class TestInstructionMix:
    def test_total_expands_transcendentals(self):
        mix = InstructionMix(int_ops=10, transcendentals=2)
        assert mix.total_instructions == 10 + 2 * EnergyModel.TRANSCENDENTAL_EXPANSION

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            InstructionMix(int_ops=-1)

    def test_scaled(self):
        mix = InstructionMix(int_ops=10, loads=4).scaled(0.5)
        assert mix.int_ops == 5 and mix.loads == 2

    def test_scaled_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            InstructionMix(int_ops=1).scaled(-1.0)

    def test_addition(self):
        total = InstructionMix(int_ops=3) + InstructionMix(int_ops=4, fp_ops=1)
        assert total.int_ops == 7 and total.fp_ops == 1

    @settings(max_examples=50, deadline=None)
    @given(mixes, st.floats(min_value=0.0, max_value=10.0))
    def test_scaling_is_linear_in_energy(self, mix, factor):
        model = EnergyModel()
        scaled = model.iteration_energy_pj(mix.scaled(factor))
        assert scaled == pytest.approx(factor * model.iteration_energy_pj(mix),
                                       rel=1e-9, abs=1e-9)


class TestEnergyModel:
    def test_empty_mix_is_free(self):
        model = EnergyModel()
        assert model.iteration_energy_pj(InstructionMix()) == 0.0
        assert model.iteration_cycles(InstructionMix()) == 0.0

    def test_energy_components_sum(self):
        model = EnergyModel()
        mix = InstructionMix(int_ops=10, fp_ops=5, loads=3, stores=2, branches=4)
        breakdown = model.breakdown(mix)
        assert sum(breakdown.values()) == pytest.approx(
            model.iteration_energy_pj(mix)
        )

    def test_fp_costs_more_than_int(self):
        model = EnergyModel()
        fp = model.iteration_energy_pj(InstructionMix(fp_ops=100))
        integer = model.iteration_energy_pj(InstructionMix(int_ops=100))
        assert fp > integer

    def test_transcendental_dominates_timing(self):
        model = EnergyModel()
        plain = model.iteration_cycles(InstructionMix(fp_ops=10))
        transc = model.iteration_cycles(InstructionMix(transcendentals=10))
        assert transc > 10 * plain

    def test_effective_ipc_caps_throughput(self):
        fast = EnergyModel(effective_ipc=4.0)
        slow = EnergyModel(effective_ipc=1.0)
        mix = InstructionMix(int_ops=1)  # tiny so issue bound dominates
        mix = InstructionMix(int_ops=0.5, loads=0.1)
        assert slow.iteration_cycles(mix) > fast.iteration_cycles(mix)

    def test_effective_ipc_never_exceeds_issue_width(self):
        model = EnergyModel(effective_ipc=100.0)
        assert model.effective_ipc == model.params.issue_width

    def test_lower_hit_ratio_costs_more(self):
        mix = InstructionMix(loads=100)
        good = EnergyModel(l1_hit_ratio=0.99)
        bad = EnergyModel(l1_hit_ratio=0.5)
        assert bad.iteration_energy_pj(mix) > good.iteration_energy_pj(mix)
        assert bad.iteration_cycles(mix) > good.iteration_cycles(mix)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(l1_hit_ratio=1.5)
        with pytest.raises(ConfigurationError):
            EnergyModel(branch_mispredict_ratio=-0.1)
        with pytest.raises(ConfigurationError):
            EnergyModel(effective_ipc=0.0)

    def test_time_ns_uses_clock(self):
        model = EnergyModel()
        mix = InstructionMix(int_ops=30)
        expected = model.iteration_cycles(mix) / model.params.clock_ghz
        assert model.iteration_time_ns(mix) == pytest.approx(expected)

    def test_iteration_cost_bundles_both(self):
        model = EnergyModel()
        mix = InstructionMix(int_ops=10, loads=2)
        cost = model.iteration_cost(mix)
        assert cost.energy_pj == model.iteration_energy_pj(mix)
        assert cost.cycles == model.iteration_cycles(mix)

    @settings(max_examples=50, deadline=None)
    @given(mixes)
    def test_energy_and_cycles_nonnegative(self, mix):
        model = EnergyModel()
        assert model.iteration_energy_pj(mix) >= 0.0
        assert model.iteration_cycles(mix) >= 0.0

    @settings(max_examples=50, deadline=None)
    @given(mixes, mixes)
    def test_energy_additive_over_mixes(self, a, b):
        model = EnergyModel()
        combined = model.iteration_energy_pj(a + b)
        separate = model.iteration_energy_pj(a) + model.iteration_energy_pj(b)
        assert combined == pytest.approx(separate, rel=1e-9, abs=1e-6)


class TestCostBreakdown:
    def test_addition(self):
        total = CostBreakdown(10.0, 2.0) + CostBreakdown(5.0, 3.0)
        assert total.energy_pj == 15.0 and total.cycles == 5.0

    def test_scaled(self):
        c = CostBreakdown(10.0, 4.0).scaled(0.5)
        assert c.energy_pj == 5.0 and c.cycles == 2.0
