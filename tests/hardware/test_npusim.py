"""Tests for the PE-level NPU schedule simulator."""

import pytest

from repro.apps import all_applications
from repro.errors import ConfigurationError
from repro.hardware.npu import NPUConfig, NPUModel
from repro.hardware.npusim import simulate_npu_invocation
from repro.nn.mlp import Topology


class TestSchedule:
    def test_tiny_network_by_hand(self):
        # 2->2->1 on 8 PEs, queue 2 words/cycle, overhead 4:
        # input 1 cycle + overhead 4; layer1: 2 neurons on 2 PEs, 2 MACs
        # each -> 2 cycles, +2 activations; layer2: 1 neuron, 2 MACs, +1
        # activation; output 0.5 cycles.
        result = simulate_npu_invocation(Topology.parse("2->2->1"))
        expected = 1.0 + 4.0 + (2 + 2) + (2 + 1) + 0.5
        assert result.total_cycles == pytest.approx(expected)

    def test_pe_busy_accounting(self):
        result = simulate_npu_invocation(Topology.parse("4->8->1"))
        # Layer 1: 8 neurons x 4 MACs spread over 8 PEs = 4 each;
        # layer 2: 1 neuron x 8 MACs on PE 0.
        assert sum(result.pe_busy_cycles) == 8 * 4 + 1 * 8
        assert result.pe_busy_cycles[0] == 4 + 8
        assert result.critical_pe == 0

    def test_layer_barrier(self):
        result = simulate_npu_invocation(Topology.parse("2->4->4->2"))
        finishes = result.layer_finish_cycles
        assert len(finishes) == 3
        assert all(b > a for a, b in zip(finishes, finishes[1:]))

    def test_more_pes_faster_until_neuron_limit(self):
        topo = Topology.parse("9->8->1")
        few = simulate_npu_invocation(topo, NPUConfig(n_pes=2))
        many = simulate_npu_invocation(topo, NPUConfig(n_pes=8))
        saturated = simulate_npu_invocation(topo, NPUConfig(n_pes=16))
        assert many.total_cycles < few.total_cycles
        # Beyond 8 PEs the 8-neuron layer cannot parallelize further.
        assert saturated.total_cycles == pytest.approx(many.total_cycles)

    def test_utilization_in_unit_range(self):
        result = simulate_npu_invocation(Topology.parse("64->16->64"))
        assert 0.0 < result.pe_utilization <= 1.0

    def test_invalid_topology(self):
        with pytest.raises(ConfigurationError):
            simulate_npu_invocation("9->8->1")


class TestAnalyticalValidation:
    """The PE-level schedule brackets the closed-form NPUModel."""

    @pytest.mark.parametrize(
        "app", all_applications(), ids=lambda a: a.name
    )
    def test_within_small_factor_on_table1(self, app):
        model = NPUModel()
        for topology in (app.rumba_topology, app.npu_topology):
            analytical = model.invocation_cycles(topology)
            scheduled = simulate_npu_invocation(topology).total_cycles
            ratio = scheduled / analytical
            assert 0.5 <= ratio <= 2.5, (app.name, str(topology), ratio)

    def test_ordering_preserved(self):
        model = NPUModel()
        topologies = [
            Topology.parse(s)
            for s in ("2->2->2", "9->8->1", "18->32->8->2", "64->16->64")
        ]
        analytical = [model.invocation_cycles(t) for t in topologies]
        scheduled = [
            simulate_npu_invocation(t).total_cycles for t in topologies
        ]
        assert sorted(range(4), key=lambda i: analytical[i]) == sorted(
            range(4), key=lambda i: scheduled[i]
        )
