"""Tests for the trace-based out-of-order core simulator."""

import numpy as np
import pytest

from repro.apps import all_applications
from repro.errors import ConfigurationError
from repro.hardware.cpusim import (
    OutOfOrderCoreSim,
    SetAssociativeCache,
    TraceGenerator,
    build_table2_hierarchy,
    simulate_mix,
)
from repro.hardware.cpusim.trace import BASE_LATENCY, MicroOp, OpKind
from repro.hardware.energy import EnergyModel, InstructionMix
from repro.hardware.microarch import MicroArchParams


class TestTraceGenerator:
    def test_kind_histogram_matches_mix(self):
        mix = InstructionMix(int_ops=10, fp_ops=5, loads=3, stores=2,
                             branches=4, transcendentals=1)
        trace = TraceGenerator(mix, seed=0).generate(4)
        counts = {kind: 0 for kind in OpKind}
        for op in trace:
            counts[op.kind] += 1
        assert counts[OpKind.INT] == 40
        assert counts[OpKind.FP] == 20
        assert counts[OpKind.LOAD] == 12
        assert counts[OpKind.STORE] == 8
        assert counts[OpKind.BRANCH] == 16
        assert counts[OpKind.TRANSCENDENTAL] == 4

    def test_memory_ops_have_addresses(self):
        mix = InstructionMix(loads=5, stores=5, int_ops=5)
        trace = TraceGenerator(mix, seed=1).generate(3)
        for op in trace:
            if op.is_memory:
                assert op.address is not None and op.address >= 0
            else:
                assert op.address is None

    def test_dependencies_point_backwards_within_window(self):
        mix = InstructionMix(int_ops=50)
        gen = TraceGenerator(mix, dependency_window=4, seed=2)
        trace = gen.generate(2)
        for op in trace:
            for dep in op.deps:
                assert dep < op.index
                assert op.index - dep <= 4

    def test_deterministic_per_seed(self):
        mix = InstructionMix(int_ops=20, loads=5)
        a = TraceGenerator(mix, seed=3).generate(2)
        b = TraceGenerator(mix, seed=3).generate(2)
        assert [(o.kind, o.deps, o.address) for o in a] == [
            (o.kind, o.deps, o.address) for o in b
        ]

    def test_validations(self):
        with pytest.raises(ConfigurationError):
            TraceGenerator(InstructionMix())
        with pytest.raises(ConfigurationError):
            TraceGenerator(InstructionMix(int_ops=1), dependency_window=0)
        with pytest.raises(ConfigurationError):
            TraceGenerator(InstructionMix(int_ops=1)).generate(0)


class TestCache:
    def test_first_access_misses_then_hits(self):
        cache = SetAssociativeCache(1024, ways=2, line_bytes=64,
                                    hit_latency=3, memory_latency=100)
        assert cache.access(0) == 103
        assert cache.access(0) == 3
        assert cache.access(32) == 3  # same line
        assert cache.stats.hits == 2

    def test_lru_eviction(self):
        # 2 sets x 2 ways; lines 0, 2, 4 map to set 0.
        cache = SetAssociativeCache(256, ways=2, line_bytes=64,
                                    hit_latency=1, memory_latency=10)
        cache.access(0 * 64)
        cache.access(2 * 64)
        cache.access(4 * 64)   # evicts line 0 (LRU)
        assert cache.access(2 * 64) == 1     # still resident
        assert cache.access(0 * 64) == 11    # was evicted

    def test_two_level_chain(self):
        l1 = build_table2_hierarchy()
        cold = l1.access(0)
        assert cold == 3 + 12 + 120  # L1 miss + L2 miss + memory
        assert l1.access(0) == 3

    def test_flush(self):
        cache = SetAssociativeCache(1024, ways=2)
        cache.access(0)
        cache.flush()
        assert cache.stats.accesses == 0
        assert cache.access(0) > cache.hit_latency

    def test_geometry_validated(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(100, ways=3, line_bytes=64)
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(0, ways=1)


class TestCoreSim:
    def test_single_op(self):
        sim = OutOfOrderCoreSim(seed=0)
        trace = [MicroOp(index=0, kind=OpKind.INT)]
        result = sim.simulate(trace)
        assert result.cycles == pytest.approx(BASE_LATENCY[OpKind.INT])
        assert result.n_ops == 1

    def test_dependency_chain_serializes(self):
        sim = OutOfOrderCoreSim(seed=0)
        chain = [
            MicroOp(index=i, kind=OpKind.FP, deps=(i - 1,) if i else ())
            for i in range(10)
        ]
        result = sim.simulate(chain)
        assert result.cycles >= 10 * BASE_LATENCY[OpKind.FP]

    def test_independent_ops_run_in_parallel(self):
        sim = OutOfOrderCoreSim(seed=0)
        independent = [MicroOp(index=i, kind=OpKind.INT) for i in range(12)]
        result = sim.simulate(independent)
        chain = [
            MicroOp(index=i, kind=OpKind.INT, deps=(i - 1,) if i else ())
            for i in range(12)
        ]
        serial = OutOfOrderCoreSim(seed=0).simulate(chain)
        assert result.cycles < serial.cycles

    def test_issue_width_bounds_throughput(self):
        narrow = MicroArchParams(issue_width=1)
        wide = MicroArchParams(issue_width=6)
        ops = [MicroOp(index=i, kind=OpKind.INT) for i in range(60)]
        slow = OutOfOrderCoreSim(params=narrow, seed=0).simulate(list(ops))
        fast = OutOfOrderCoreSim(params=wide, seed=0).simulate(list(ops))
        assert slow.cycles > fast.cycles

    def test_transcendentals_occupy_fpu(self):
        sim = OutOfOrderCoreSim(seed=0)
        transc = [
            MicroOp(index=i, kind=OpKind.TRANSCENDENTAL) for i in range(4)
        ]
        result = sim.simulate(transc)
        # 4 unpipelined 40-cycle ops on 2 FPUs: at least two serialized.
        assert result.cycles >= 80.0

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            OutOfOrderCoreSim().simulate([])

    def test_mispredicts_slow_execution(self):
        mix = InstructionMix(int_ops=20, branches=10)
        perfect = OutOfOrderCoreSim(branch_mispredict_ratio=0.0, seed=0)
        noisy = OutOfOrderCoreSim(branch_mispredict_ratio=0.5, seed=0)
        trace = TraceGenerator(mix, seed=0).generate(20)
        assert noisy.simulate(trace).cycles > perfect.simulate(list(trace)).cycles


class TestAnalyticalValidation:
    """The headline purpose: the dynamic sim corroborates the closed-form
    EnergyModel used by the evaluation."""

    @pytest.fixture(scope="class")
    def comparison(self):
        model = EnergyModel()
        rows = {}
        for app in all_applications():
            result = simulate_mix(app.instruction_mix, n_iterations=25, seed=0)
            rows[app.name] = (
                result.cycles_per_iteration(25),
                model.iteration_cycles(app.instruction_mix),
            )
        return rows

    def test_within_small_factor(self, comparison):
        for name, (sim, analytical) in comparison.items():
            ratio = sim / analytical
            assert 1.0 <= ratio <= 3.5, (name, ratio)

    def test_ratio_consistent_across_benchmarks(self, comparison):
        """The sim/analytical ratio is stable, so relative comparisons
        (speedups, energy ratios) are insensitive to which model is used."""
        ratios = [sim / ana for sim, ana in comparison.values()]
        assert max(ratios) / min(ratios) < 1.6

    def test_kernel_ordering_preserved(self, comparison):
        sims = np.array([v[0] for v in comparison.values()])
        analyticals = np.array([v[1] for v in comparison.values()])
        sim_rank = np.argsort(sims)
        ana_rank = np.argsort(analyticals)
        np.testing.assert_array_equal(sim_rank, ana_rank)

    def test_cache_hit_ratio_near_analytical_assumption(self, comparison):
        result = simulate_mix(
            all_applications()[0].instruction_mix, n_iterations=25, seed=0
        )
        assert 0.80 <= result.l1_hit_ratio <= 1.0
