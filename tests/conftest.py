"""Shared fixtures.

Heavy artifacts (trained accelerator backends, benchmark evaluations) are
session-scoped and built on the cheapest benchmarks so the suite stays
fast while still exercising real trained networks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import get_application
from repro.approx import train_npu_backend
from repro.eval import evaluate_benchmark
from repro.nn.trainer import RPropTrainer
from repro.predictors import collect_training_data


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def fft_app():
    return get_application("fft")


@pytest.fixture(scope="session")
def inversek2j_app():
    return get_application("inversek2j")


@pytest.fixture(scope="session")
def fft_backend(fft_app):
    """A quickly-trained Rumba-topology backend for fft."""
    backend, _ = train_npu_backend(
        fft_app,
        trainer=RPropTrainer(max_epochs=400, patience=60, seed=0),
        seed=0,
    )
    return backend


@pytest.fixture(scope="session")
def fft_training_data(fft_app, fft_backend):
    return collect_training_data(fft_app, fft_backend, seed=1, n_cap=2000)


@pytest.fixture(scope="session")
def fft_ensemble(fft_app):
    """The default-spec fft ensemble *prototype* (cached alongside the
    offline backend cache).  Tests must not mutate it: call
    ``clone_shard()`` before routing or learning."""
    from repro.core.offline import prepare_ensemble

    return prepare_ensemble(fft_app, seed=0)


@pytest.fixture(scope="session")
def ik2j_evaluation():
    """Full evaluation material for inversek2j (cheap to train)."""
    return evaluate_benchmark("inversek2j", seed=0, n_test_cap=4000)


@pytest.fixture(scope="session")
def fft_evaluation():
    return evaluate_benchmark("fft", seed=0, n_test_cap=4000)
