"""Shared conformance suite for the :class:`ApproxBackend` protocol.

Every approximation technique — the NPU MLP, fuzzy memoization, loop
perforation, the quantized datapath and the noisy-analog datapath — must
speak the same contract (``src/repro/approx/base.py``) so the ensemble
tier can treat them interchangeably.  The suite is parametrized over all
five backends and checks, per backend: runtime protocol compliance, the
fused ``forward_batch(out=)`` path matching ``__call__`` to 1e-9, pickle
round trips preserving behaviour bit for bit, ``reset_state`` restoring
fresh-instance behaviour, and ``clone_shard`` isolation.
"""

import pickle

import numpy as np
import pytest

from repro.approx.alt_backends import (
    NoisyAnalogBackend,
    QuantizedKernelBackend,
)
from repro.approx.base import (
    ApproxBackend,
    BackendBase,
    CostProfile,
    warn_deprecated,
)
from repro.approx.memoization import MemoizingBackend
from repro.approx.perforation_backend import PerforatedKernelBackend

BACKEND_NAMES = ("npu-mlp", "memo", "perforate", "quantize", "analog")


@pytest.fixture(scope="module")
def probe(fft_app):
    rng = np.random.default_rng(42)
    return np.atleast_2d(fft_app.test_inputs(rng))[:64]


@pytest.fixture
def make_backend(fft_app, fft_backend):
    """Factory building a fresh backend instance per call.

    The NPU backend is the exception: its trained weights are immutable
    at run time, so the session-scoped instance is the 'fresh' instance.
    """

    def build(name):
        if name == "npu-mlp":
            return fft_backend
        if name == "memo":
            return MemoizingBackend(fft_app, key_bits=4)
        if name == "perforate":
            return PerforatedKernelBackend(fft_app, keep_every=2)
        if name == "quantize":
            return QuantizedKernelBackend(fft_app, bits=8)
        if name == "analog":
            return NoisyAnalogBackend(fft_app, calibration_seed=0,
                                      noise_seed=1)
        raise AssertionError(name)

    return build


@pytest.mark.parametrize("name", BACKEND_NAMES)
class TestApproxBackendConformance:
    def test_runtime_protocol_compliance(self, make_backend, name):
        backend = make_backend(name)
        assert isinstance(backend, ApproxBackend)
        assert backend.name == name
        assert isinstance(backend.quality_class, int)

    def test_call_produces_output_block(self, make_backend, probe,
                                        fft_app, name):
        out = make_backend(name)(probe)
        assert out.shape == (probe.shape[0], fft_app.n_outputs)
        assert out.dtype == np.float64

    def test_features_are_per_row(self, make_backend, probe, name):
        feats = make_backend(name).features(probe)
        assert feats.shape[0] == probe.shape[0]

    def test_fused_path_matches_call_to_1e9(self, make_backend, probe,
                                            name):
        """``forward_batch`` (with and without ``out=``) must agree with
        ``__call__`` to 1e-9 from identical runtime state."""
        backend = make_backend(name)
        backend.reset_state()
        reference = np.array(backend(probe))
        backend.reset_state()
        out = np.empty_like(reference)
        returned = backend.forward_batch(probe, out=out)
        assert returned is out
        np.testing.assert_allclose(out, reference, rtol=1e-9, atol=1e-9)
        backend.reset_state()
        np.testing.assert_allclose(
            backend.forward_batch(probe), reference, rtol=1e-9, atol=1e-9
        )

    def test_pickle_round_trip_is_bit_identical(self, make_backend,
                                                probe, name):
        """A pickled twin must track the original byte for byte — both
        from a fresh state and mid-stream (after calls accumulated
        runtime state such as memo entries or analog rng position)."""
        backend = make_backend(name)
        twin = pickle.loads(pickle.dumps(backend))
        assert backend(probe).tobytes() == twin(probe).tobytes()
        # Both instances are now one call deep; pickling again must
        # carry that state across the boundary too.
        mid = pickle.loads(pickle.dumps(backend))
        assert backend(probe).tobytes() == mid(probe).tobytes()

    def test_reset_state_restores_fresh_behaviour(self, make_backend,
                                                  probe, name):
        backend = make_backend(name)
        fresh = backend(probe).copy()
        backend(probe)  # accumulate more runtime state
        backend.reset_state()
        assert backend(probe).tobytes() == fresh.tobytes()

    def test_clone_shard_isolation(self, make_backend, probe, name):
        """Running a clone must not disturb the original's behaviour."""
        backend = make_backend(name)
        expected = make_backend(name)(probe).copy()
        shard = backend.clone_shard()
        assert isinstance(shard, ApproxBackend)
        shard(probe)
        shard(probe)
        backend.reset_state()
        assert backend(probe).tobytes() == expected.tobytes()

    def test_cost_profile_contract(self, make_backend, fft_app, name):
        from repro.core.costs import CostModel

        backend = make_backend(name)
        for profile in (backend.cost_profile(),
                        backend.cost_profile(CostModel(fft_app))):
            assert isinstance(profile, CostProfile)
            assert profile.relative_latency > 0
            assert profile.relative_energy > 0

    def test_npu_profile_reports_hardware_cycles(self, make_backend,
                                                 fft_app, name):
        if name != "npu-mlp":
            pytest.skip("hardware timing model is NPU-only")
        from repro.core.costs import CostModel

        profile = make_backend(name).cost_profile(CostModel(fft_app))
        assert profile.invocation_cycles is not None
        assert profile.invocation_cycles > 0


class TestCostProfileValidation:
    def test_nonpositive_costs_rejected(self):
        with pytest.raises(ValueError):
            CostProfile(relative_latency=0.0, relative_energy=0.5)
        with pytest.raises(ValueError):
            CostProfile(relative_latency=0.5, relative_energy=-1.0)


class TestBackendBaseDefaults:
    def test_default_forward_batch_copies_into_out(self):
        class Doubler(BackendBase):
            name = "doubler"

            def __call__(self, inputs):
                return np.atleast_2d(inputs) * 2.0

            def features(self, inputs):
                return np.atleast_2d(inputs)

        backend = Doubler()
        x = np.arange(6, dtype=float).reshape(3, 2)
        out = np.empty((3, 2))
        assert backend.forward_batch(x, out=out) is out
        np.testing.assert_array_equal(out, x * 2.0)
        assert isinstance(backend, ApproxBackend)
        assert backend.clone_shard() is backend  # stateless default


class TestDeprecationShim:
    """The renamed-API shim pattern must warn once per call site and
    keep the historical semantics for one deprecation cycle."""

    def test_warn_deprecated_message(self):
        with pytest.warns(DeprecationWarning,
                          match=r"old\(\) is deprecated; use new\(\)"):
            warn_deprecated("old()", "new()")

    def test_memo_clear_warns_and_still_clears(self, fft_app, probe):
        backend = MemoizingBackend(fft_app, key_bits=4)
        backend(probe)
        assert backend.misses > 0
        with pytest.warns(
            DeprecationWarning,
            match=r"MemoizingBackend\.clear\(\) is deprecated; "
                  r"use MemoizingBackend\.reset_state\(\)",
        ):
            backend.clear()
        assert backend.hits == 0 and backend.misses == 0
        assert backend.last_distances is None

    def test_memo_clear_empties_frozen_table_unlike_reset(self, fft_app,
                                                          probe):
        """Historical ``clear()`` drops even a frozen (trained) table;
        the replacement ``reset_state()`` treats it as an artifact."""
        backend = MemoizingBackend(fft_app, key_bits=4)
        backend(probe)
        backend.freeze()
        backend.reset_state()
        assert backend._table  # survives the protocol-level reset
        with pytest.warns(DeprecationWarning):
            backend.clear()
        assert not backend._table
