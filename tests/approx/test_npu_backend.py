"""Unit tests for the NPU backend (trained accelerator)."""

import numpy as np
import pytest

from repro.apps import get_application
from repro.approx.npu_backend import (
    NPUBackend,
    search_npu_backend,
    train_npu_backend,
)
from repro.errors import ConfigurationError
from repro.nn.trainer import RPropTrainer


FAST = RPropTrainer(max_epochs=150, patience=25, seed=0)


class TestTrainNpuBackend:
    def test_backend_approximates_kernel(self, fft_app, fft_backend):
        rng = np.random.default_rng(9)
        x = fft_app.test_inputs(rng)[:500]
        approx = fft_backend(x)
        exact = fft_app.exact(x)
        assert approx.shape == exact.shape
        # Approximate but correlated with the exact outputs.
        err = fft_app.output_error(approx, exact)
        assert 0.0 < err < 0.5

    def test_rumba_topology_used_by_default(self, fft_app, fft_backend):
        assert fft_backend.topology == fft_app.rumba_topology

    def test_npu_topology_option(self, fft_app):
        backend, _ = train_npu_backend(
            fft_app, use_rumba_topology=False, trainer=FAST, seed=0
        )
        assert backend.topology == fft_app.npu_topology

    def test_input_projection_for_blackscholes(self):
        app = get_application("blackscholes")
        backend, _ = train_npu_backend(app, trainer=FAST, seed=0)
        rng = np.random.default_rng(2)
        x = app.test_inputs(rng)[:50]
        feats = backend.features(x)
        assert feats.shape == (50, 3)  # Rumba's 3 selected columns
        out = backend(x)
        assert out.shape == (50, 1)

    def test_features_reject_wrong_width(self, fft_backend):
        with pytest.raises(ConfigurationError):
            fft_backend.features(np.ones((4, 3)))

    def test_training_cap_subsamples(self):
        app = get_application("fft")
        backend, result = train_npu_backend(
            app, trainer=FAST, seed=0, n_train_cap=100
        )
        assert backend is not None
        assert result.train_losses  # trained on something

    def test_deterministic_given_seed(self, fft_app):
        a, _ = train_npu_backend(fft_app, trainer=FAST, seed=3)
        b, _ = train_npu_backend(fft_app, trainer=FAST, seed=3)
        x = np.random.default_rng(0).random((20, 1)) * 0.5
        np.testing.assert_array_equal(a(x), b(x))

    def test_search_selects_admissible_topology(self):
        """Sec. 4: the search picks the smallest net within the slack of
        the best candidate, under the NPU's structural constraints."""
        app = get_application("inversek2j")
        backend, candidates = search_npu_backend(
            app, widths=(2, 4), max_hidden_layers=1, slack=1.2, seed=0
        )
        best = min(c.val_error for c in candidates)
        chosen = next(
            c for c in candidates if c.topology == backend.network.topology
        )
        assert chosen.val_error <= 1.2 * best
        # No cheaper candidate was also admissible.
        for c in candidates:
            if c.n_weights < chosen.n_weights:
                assert c.val_error > 1.2 * best
        # NPU constraint: at most 2 hidden layers, <= 32 neurons each.
        assert len(backend.topology.hidden_sizes) <= 2
        assert all(w <= 32 for w in backend.topology.hidden_sizes)

    def test_searched_backend_is_usable(self):
        app = get_application("inversek2j")
        backend, _ = search_npu_backend(
            app, widths=(2, 4), max_hidden_layers=1, seed=0
        )
        rng = np.random.default_rng(5)
        x = app.test_inputs(rng)[:500]
        err = app.output_error(backend(x), app.exact(x))
        assert 0.0 < err < 1.0

    def test_bigger_npu_topology_at_least_as_accurate(self, fft_app):
        rumba, _ = train_npu_backend(fft_app, use_rumba_topology=True, seed=0)
        npu, _ = train_npu_backend(fft_app, use_rumba_topology=False, seed=0)
        rng = np.random.default_rng(4)
        x = fft_app.test_inputs(rng)[:1000]
        exact = fft_app.exact(x)
        err_rumba = fft_app.output_error(rumba(x), exact)
        err_npu = fft_app.output_error(npu(x), exact)
        # Table 1's point: the unchecked NPU needs the bigger (more
        # accurate) network; Rumba tolerates the smaller one.
        assert err_npu < err_rumba


class TestFusedScalerFolding:
    def test_fused_matches_unfused_to_1e9(self, fft_app, fft_backend):
        rng = np.random.default_rng(11)
        x = fft_app.test_inputs(rng)[:800]
        fused = fft_backend(x)
        unfused = fft_backend.unfused_call(x)
        np.testing.assert_allclose(fused, unfused, rtol=1e-9, atol=1e-9)

    def test_fused_matches_on_constant_input_column(self):
        # blackscholes' PARSEC data holds columns effectively constant;
        # the scaler maps constant columns specially, and the fold must
        # reproduce that handling.
        from repro.nn.mlp import MLP
        from repro.nn.scaler import MinMaxScaler

        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        x[:, 1] = 2.5  # constant column
        y = np.stack([x[:, 0] + x[:, 2], x[:, 0] * 0.5], axis=1)
        in_scaler = MinMaxScaler().fit(x)
        out_scaler = MinMaxScaler().fit(y)
        network = MLP((3, 4, 2), rng=np.random.default_rng(3))
        backend = NPUBackend(
            network=network, input_scaler=in_scaler,
            output_scaler=out_scaler,
        )
        np.testing.assert_allclose(
            backend(x), backend.unfused_call(x), rtol=1e-9, atol=1e-9
        )

    def test_fused_single_layer_network(self):
        from repro.nn.mlp import MLP
        from repro.nn.scaler import MinMaxScaler

        rng = np.random.default_rng(1)
        x = rng.uniform(1.0, 4.0, size=(64, 2))
        y = x @ np.array([[1.0], [-2.0]])
        in_scaler = MinMaxScaler().fit(x)
        out_scaler = MinMaxScaler().fit(y)
        # No hidden layer: input and output folds hit the same matrix.
        backend = NPUBackend(
            network=MLP((2, 1), rng=np.random.default_rng(0)),
            input_scaler=in_scaler, output_scaler=out_scaler,
        )
        np.testing.assert_allclose(
            backend(x), backend.unfused_call(x), rtol=1e-9, atol=1e-9
        )

    def test_nonlinear_output_falls_back_to_unfused(self):
        from repro.nn.mlp import MLP
        from repro.nn.scaler import MinMaxScaler

        rng = np.random.default_rng(2)
        x = rng.normal(size=(32, 2))
        in_scaler = MinMaxScaler().fit(x)
        out_scaler = MinMaxScaler().fit(np.abs(x[:, :1]))
        backend = NPUBackend(
            network=MLP((2, 3, 1), rng=np.random.default_rng(0),
                        output_activation="sigmoid"),
            input_scaler=in_scaler, output_scaler=out_scaler,
        )
        with pytest.raises(ConfigurationError, match="linear output"):
            backend.fused()
        np.testing.assert_array_equal(backend(x), backend.unfused_call(x))

    def test_refresh_fused_tracks_weight_updates(self, fft_backend):
        rng = np.random.default_rng(13)
        x = rng.uniform(-0.5, 0.5, size=(16, 1))
        before = fft_backend(x)
        original = fft_backend.network.get_flat_params().copy()
        try:
            fft_backend.network.set_flat_params(original * 1.01)
            stale = fft_backend(x)  # cached fold: unchanged values
            np.testing.assert_array_equal(stale, before)
            fft_backend.refresh_fused()
            np.testing.assert_allclose(
                fft_backend(x), fft_backend.unfused_call(x),
                rtol=1e-9, atol=1e-9,
            )
        finally:
            fft_backend.network.set_flat_params(original)
            fft_backend.refresh_fused()
