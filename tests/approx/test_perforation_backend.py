"""Tests for Rumba applied to loop-perforated reductions."""

import numpy as np
import pytest

from repro.apps.datasets import flower_image
from repro.approx.perforation_backend import (
    PerforationQualityManager,
    sample_statistics,
)
from repro.errors import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def trained_manager():
    train = [flower_image((64, 64), seed=10_000 + i) for i in range(150)]
    return PerforationQualityManager(
        skip_rate=0.995, threshold=0.05
    ).fit(train)


@pytest.fixture(scope="module")
def test_images():
    return [flower_image((64, 64), seed=20_000 + i) for i in range(150)]


class TestSampleStatistics:
    def test_shape_and_values(self):
        stats = sample_statistics(np.array([1.0, 3.0, 5.0, 7.0]))
        assert stats.shape == (8,)
        assert stats[0] == pytest.approx(4.0)   # mean
        assert stats[2] == 1.0 and stats[3] == 7.0
        assert stats[5] == 4.0                  # sample size

    def test_constant_sample(self):
        stats = sample_statistics(np.full(10, 2.0))
        assert stats[1] == 0.0   # std
        assert stats[4] == 0.0   # lag-1

    def test_jackknife_gap_detects_trend(self):
        trending = np.linspace(0, 100, 20)
        flat = np.full(20, 50.0)
        assert sample_statistics(trending)[7] > sample_statistics(flat)[7]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_statistics(np.empty(0))


class TestPerforationQualityManager:
    def test_requires_fit(self, test_images):
        manager = PerforationQualityManager()
        with pytest.raises(NotFittedError):
            manager.process_stream(test_images)

    def test_reduces_mean_and_tail_error(self, trained_manager, test_images):
        outcome = trained_manager.process_stream(test_images)
        before = outcome.errors(outcome.approx_values)
        after = outcome.errors()
        assert after.mean() < before.mean()
        assert after.max() <= before.max()
        assert 0.0 < outcome.recovered_fraction < 1.0

    def test_recovered_invocations_are_exact(self, trained_manager,
                                             test_images):
        outcome = trained_manager.process_stream(test_images)
        np.testing.assert_allclose(
            outcome.final_values[outcome.recovered],
            outcome.exact_values[outcome.recovered],
        )

    def test_unflagged_invocations_untouched(self, trained_manager,
                                             test_images):
        outcome = trained_manager.process_stream(test_images)
        np.testing.assert_array_equal(
            outcome.final_values[~outcome.recovered],
            outcome.approx_values[~outcome.recovered],
        )

    def test_lower_threshold_fixes_more(self, test_images):
        train = [flower_image((64, 64), seed=30_000 + i) for i in range(100)]
        strict = PerforationQualityManager(threshold=0.01).fit(train)
        loose = PerforationQualityManager(threshold=0.20).fit(train)
        assert (
            strict.process_stream(test_images).n_recovered
            >= loose.process_stream(test_images).n_recovered
        )

    def test_validations(self):
        with pytest.raises(ConfigurationError):
            PerforationQualityManager(skip_rate=1.0)
        with pytest.raises(ConfigurationError):
            PerforationQualityManager(threshold=-0.1)
        with pytest.raises(ConfigurationError):
            PerforationQualityManager().fit([])
        manager = PerforationQualityManager().fit(
            [flower_image((32, 32), seed=1)]
        )
        with pytest.raises(ConfigurationError):
            manager.process_stream([])

    def test_beats_sampling_monitor_on_misses(self, trained_manager,
                                              test_images):
        """The Sec. 6 comparison: continuous checking catches bad
        invocations a check-every-Nth policy mostly misses."""
        from repro.core.sampling_monitor import QualitySamplingMonitor

        outcome = trained_manager.process_stream(test_images)
        before = outcome.errors(outcome.approx_values)
        bad = before > 0.10
        if bad.sum() == 0:
            pytest.skip("no bad invocations in this draw")
        rumba_caught = (bad & outcome.recovered).sum()
        sampling = QualitySamplingMonitor(
            check_every_n=10, target_error=0.05
        ).process_stream(before)
        sampling_caught = (bad & sampling.checked).sum()
        assert rumba_caught > sampling_caught
