"""Tests for fuzzy memoization with quality management."""

import numpy as np
import pytest

from repro.apps import get_application
from repro.approx.memoization import MemoizationQualityManager, MemoizingBackend
from repro.errors import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def ik2j_app():
    return get_application("inversek2j")


class TestMemoizingBackend:
    def test_first_pass_all_misses_exact(self, ik2j_app):
        backend = MemoizingBackend(ik2j_app, key_bits=4)
        rng = np.random.default_rng(0)
        x = ik2j_app.test_inputs(rng)[:200]
        out = backend(x)
        # Unique keys computed exactly; duplicates within the batch may hit.
        exact = ik2j_app.exact(x)
        miss_rows = backend.last_distances == 0.0
        np.testing.assert_allclose(out[miss_rows], exact[miss_rows])

    def test_repeat_batch_hits(self, ik2j_app):
        backend = MemoizingBackend(ik2j_app, key_bits=4)
        rng = np.random.default_rng(1)
        x = ik2j_app.test_inputs(rng)[:300]
        backend(x)
        misses_before = backend.misses
        backend(x)  # identical inputs: every key hits
        assert backend.misses == misses_before
        assert backend.hit_rate > 0.4

    def test_hits_carry_distance(self, ik2j_app):
        backend = MemoizingBackend(ik2j_app, key_bits=3)
        rng = np.random.default_rng(2)
        x = ik2j_app.test_inputs(rng)[:500]
        backend(x)
        y = x + 0.01  # nearby queries reuse entries
        backend(y)
        hit_distances = backend.last_distances[backend.last_distances > 0]
        assert hit_distances.size > 0
        assert np.all(hit_distances < 1.0)

    def test_coarser_keys_reuse_more_and_err_more(self, ik2j_app):
        rng = np.random.default_rng(3)
        warm = ik2j_app.test_inputs(rng)[:2000]
        probe = ik2j_app.test_inputs(np.random.default_rng(4))[:1000]
        exact = ik2j_app.exact(probe)
        results = {}
        for bits in (3, 6):
            backend = MemoizingBackend(ik2j_app, key_bits=bits)
            backend(warm)
            out = backend(probe)
            results[bits] = (
                backend.hit_rate,
                ik2j_app.output_error(out, exact),
            )
        assert results[3][0] > results[6][0]   # more reuse
        assert results[3][1] > results[6][1]   # more error

    def test_clear(self, ik2j_app):
        backend = MemoizingBackend(ik2j_app, key_bits=4)
        rng = np.random.default_rng(5)
        backend(ik2j_app.test_inputs(rng)[:50])
        with pytest.warns(DeprecationWarning, match="reset_state"):
            backend.clear()  # deprecated spelling of reset_state()
        assert backend.hits == 0 and backend.misses == 0
        assert backend.hit_rate == 0.0

    def test_key_bits_validated(self, ik2j_app):
        with pytest.raises(ConfigurationError):
            MemoizingBackend(ik2j_app, key_bits=0)
        with pytest.raises(ConfigurationError):
            MemoizingBackend(ik2j_app, key_bits=16)


class TestMemoizationQualityManager:
    @pytest.fixture(scope="class")
    def manager(self, ik2j_app):
        return MemoizationQualityManager(
            ik2j_app, key_bits=3, threshold=0.03, seed=0
        ).fit(n_train=3000)

    def test_requires_fit(self, ik2j_app):
        with pytest.raises(NotFittedError):
            MemoizationQualityManager(ik2j_app).process(np.zeros((2, 2)))

    def test_recovery_reduces_error(self, manager, ik2j_app):
        rng = np.random.default_rng(6)
        probe = ik2j_app.test_inputs(rng)[:2000]
        outcome = manager.process(probe)
        managed_err = ik2j_app.output_error(outcome.outputs, outcome.exact)
        # Re-run the same inputs through the raw backend for the baseline.
        raw = manager.backend(probe)
        raw_err = ik2j_app.output_error(raw, outcome.exact)
        assert managed_err <= raw_err
        assert 0.0 <= outcome.recovered_fraction <= 1.0

    def test_recovered_rows_exact(self, manager, ik2j_app):
        rng = np.random.default_rng(7)
        probe = ik2j_app.test_inputs(rng)[:500]
        outcome = manager.process(probe)
        np.testing.assert_allclose(
            outcome.outputs[outcome.recovered],
            outcome.exact[outcome.recovered],
        )

    def test_distance_feature_is_informative(self, manager, ik2j_app):
        """Cache distance correlates with true memoization error."""
        rng = np.random.default_rng(8)
        probe = ik2j_app.test_inputs(rng)[:3000]
        approx = manager.backend(probe)
        distances = manager.backend.last_distances
        errors = ik2j_app.element_errors(approx, ik2j_app.exact(probe))
        hit = distances > 0
        if hit.sum() > 50:
            corr = np.corrcoef(distances[hit], errors[hit])[0, 1]
            assert corr > 0.2
