"""Unit tests for the multi-approximator ensemble tier.

Router policy and learner mechanics are tested against stub error
predictors (canned scores) so each decision rule is pinned exactly;
construction, sharding and cost blending run against real backends; and
one end-to-end group exercises the trained default-spec fft ensemble.
"""

import numpy as np
import pytest

from repro.approx.alt_backends import QuantizedKernelBackend
from repro.approx.base import CostProfile
from repro.approx.ensemble import (
    ApproximatorEnsemble,
    EnsembleMember,
    EnsembleSpec,
    InvocationRouter,
    OnlineLearner,
)
from repro.approx.memoization import MemoizingBackend
from repro.approx.perforation_backend import PerforatedKernelBackend
from repro.errors import ConfigurationError


class StubPredictor:
    """Duck-typed ErrorPredictor with canned per-row scores.

    ``value`` may be a scalar (every row scores the same) or ``"col0"``
    (each row scores its own first feature column), which lets tests
    route different rows to different members deterministically.
    """

    def __init__(self, value=0.0):
        self.value = value
        self.fit_calls = 0

    def scores(self, features=None, **_):
        features = np.atleast_2d(features)
        if self.value == "col0":
            return features[:, 0].astype(float)
        return np.full(features.shape[0], float(self.value))

    def fit(self, x, y):
        self.fit_calls += 1
        return self


def make_members(fft_app, fft_backend, cheap=0.0, mid=0.0):
    """Reference + an expensive member (cost 0.6) + a cheap one (0.1)."""
    return [
        EnsembleMember("mlp-large", fft_backend, StubPredictor(0.0),
                       CostProfile(0.3, 0.3)),
        EnsembleMember("quantize",
                       QuantizedKernelBackend(fft_app, bits=8),
                       StubPredictor(mid), CostProfile(0.6, 0.6)),
        EnsembleMember("perforate",
                       PerforatedKernelBackend(fft_app, keep_every=2),
                       StubPredictor(cheap), CostProfile(0.1, 0.1)),
    ]


@pytest.fixture
def probe(fft_app):
    rng = np.random.default_rng(5)
    return np.atleast_2d(fft_app.test_inputs(rng))[:32]


class TestEnsembleSpec:
    def test_defaults_round_trip(self):
        spec = EnsembleSpec()
        assert spec.member_tokens() == ("mlp:large", "mlp:small", "memo")

    def test_tokens_trimmed(self):
        spec = EnsembleSpec(members=" mlp:large , memo ")
        assert spec.member_tokens() == ("mlp:large", "memo")

    @pytest.mark.parametrize("kwargs,match", [
        ({"members": "mlp:large"}, "at least two members"),
        ({"members": "memo,mlp:large"}, "reference.*must be an mlp"),
        ({"router": "forest"}, "unknown router"),
        ({"margin": 0.0}, "margin must be > 0"),
        ({"degrade_bias": 0.5}, "degrade_bias must be >= 1"),
        ({"retrain_interval": 0}, "retrain_interval must be >= 1"),
        ({"learn_buffer": 4}, "learn_buffer must be >= 16"),
    ])
    def test_validation(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            EnsembleSpec(**kwargs)


class TestInvocationRouter:
    def test_cheapest_admissible_member_wins(self, fft_app, fft_backend,
                                             probe):
        # Both non-reference members predict zero error; the 0.1-energy
        # perforate member must take every row over the 0.6-energy one.
        router = InvocationRouter(make_members(fft_app, fft_backend))
        choices = router.route(probe, threshold=0.1)
        assert (choices == 2).all()

    def test_reference_fallback_when_nothing_fits(self, fft_app,
                                                  fft_backend, probe):
        router = InvocationRouter(
            make_members(fft_app, fft_backend, cheap=9.0, mid=9.0)
        )
        assert (router.route(probe, threshold=0.1) == 0).all()

    def test_next_cheapest_takes_overflow(self, fft_app, fft_backend,
                                          probe):
        # Cheap member predicts above tolerance, mid member inside it.
        router = InvocationRouter(
            make_members(fft_app, fft_backend, cheap=9.0, mid=0.01)
        )
        assert (router.route(probe, threshold=0.1) == 1).all()

    def test_per_row_routing_is_vectorized(self, fft_app, fft_backend):
        members = make_members(fft_app, fft_backend, mid=9.0)
        members[2].error_predictor = StubPredictor("col0")
        router = InvocationRouter(members)
        features = np.array([[0.01], [5.0], [0.02], [7.0]])
        choices = router.route(features, threshold=0.1)
        np.testing.assert_array_equal(choices, [2, 0, 2, 0])
        assert choices.dtype == np.int8

    def test_tolerance_scales_with_degradation(self, fft_app,
                                               fft_backend):
        router = InvocationRouter(
            make_members(fft_app, fft_backend),
            margin=0.5, degrade_bias=2.0,
        )
        assert router.tolerance(0.1) == pytest.approx(0.05)
        router.set_degradation(2)
        assert router.tolerance(0.1) == pytest.approx(0.20)
        router.set_degradation(-3)  # clamps at zero
        assert router.degradation_level == 0

    def test_degradation_widens_routing(self, fft_app, fft_backend,
                                        probe):
        router = InvocationRouter(
            make_members(fft_app, fft_backend, cheap=0.15, mid=9.0)
        )
        assert (router.route(probe, threshold=0.1) == 0).all()
        router.set_degradation(1)  # tolerance 0.1 -> 0.2
        assert (router.route(probe, threshold=0.1) == 2).all()

    def test_caution_pushes_rows_back_to_reference(self, fft_app,
                                                   fft_backend, probe):
        router = InvocationRouter(
            make_members(fft_app, fft_backend, cheap=0.05, mid=9.0)
        )
        assert (router.route(probe, threshold=0.1) == 2).all()
        router.caution[2] = 3.0  # learned: member under-predicts 3x
        assert (router.route(probe, threshold=0.1) == 0).all()

    def test_parameter_validation(self, fft_app, fft_backend):
        members = make_members(fft_app, fft_backend)
        with pytest.raises(ConfigurationError):
            InvocationRouter(members, margin=0.0)
        with pytest.raises(ConfigurationError):
            InvocationRouter(members, degrade_bias=0.9)


class TestOnlineLearner:
    def _learner(self, fft_app, fft_backend, interval=16):
        members = make_members(fft_app, fft_backend)
        router = InvocationRouter(members)
        base_x = np.linspace(0.0, 1.0, 32).reshape(-1, 1)
        base_errors = [np.full(32, 0.01) for _ in members]
        return OnlineLearner(
            members, router, base_features=base_x,
            base_errors=base_errors, retrain_interval=interval,
        ), members, router

    def test_below_interval_no_retrain(self, fft_app, fft_backend):
        learner, members, _ = self._learner(fft_app, fft_backend)
        x = np.random.default_rng(0).random((8, 1))
        learner.observe(x, np.full(8, 2), np.full(8, 0.02))
        assert learner.retrain_count == 0
        assert all(m.error_predictor.fit_calls == 0 for m in members)
        assert learner.samples_consumed == 8

    def test_interval_triggers_retrain_and_caution(self, fft_app,
                                                   fft_backend):
        learner, members, router = self._learner(fft_app, fft_backend)
        members[2].error_predictor = StubPredictor(0.05)
        x = np.random.default_rng(1).random((16, 1))
        # Observed error 4x what member 2 predicted: caution must rise.
        learner.observe(x, np.full(16, 2), np.full(16, 0.20))
        assert learner.retrain_count == 1
        assert members[2].error_predictor.fit_calls == 1
        assert router.caution[2] > 1.0
        # Members that saw no labels keep their predictor and caution.
        assert members[1].error_predictor.fit_calls == 0
        assert router.caution[1] == 1.0

    def test_online_buffer_is_capped(self, fft_app, fft_backend):
        learner, _, _ = self._learner(fft_app, fft_backend, interval=1000)
        rng = np.random.default_rng(2)
        for _ in range(8):
            learner.observe(rng.random((8, 1)), np.full(8, 1),
                            rng.random(8) * 0.1)
        learner.buffer_cap = 16
        x_on, y_on = learner._member_online(1)
        assert x_on.shape[0] == 16 and y_on.shape[0] == 16

    def test_parameter_validation(self, fft_app, fft_backend):
        members = make_members(fft_app, fft_backend)
        router = InvocationRouter(members)
        base = np.zeros((16, 1)), [np.zeros(16)] * 3
        with pytest.raises(ConfigurationError):
            OnlineLearner(members, router, base[0], base[1],
                          retrain_interval=0)
        with pytest.raises(ConfigurationError):
            OnlineLearner(members, router, base[0], base[1],
                          buffer_cap=8)


class TestApproximatorEnsemble:
    def _ensemble(self, fft_app, fft_backend, **kwargs):
        members = make_members(fft_app, fft_backend, **kwargs)
        return ApproximatorEnsemble(
            fft_app, members, InvocationRouter(members)
        )

    def test_construction_validation(self, fft_app, fft_backend):
        members = make_members(fft_app, fft_backend)
        with pytest.raises(ConfigurationError, match=">= 2 members"):
            ApproximatorEnsemble(fft_app, members[:1],
                                 InvocationRouter(members[:1]))
        swapped = [members[2], members[0]]
        with pytest.raises(ConfigurationError, match="must be an NPU"):
            ApproximatorEnsemble(fft_app, swapped,
                                 InvocationRouter(swapped))
        dup = [members[0],
               EnsembleMember("mlp-large", members[2].backend,
                              StubPredictor(), CostProfile(0.1, 0.1))]
        with pytest.raises(ConfigurationError, match="duplicate"):
            ApproximatorEnsemble(fft_app, dup, InvocationRouter(dup))

    def test_homogeneous_batch_takes_fused_path(self, fft_app,
                                                fft_backend, probe):
        ens = self._ensemble(fft_app, fft_backend)
        choices = np.full(probe.shape[0], 2, dtype=np.int8)
        out = ens.forward_routed(probe, choices)
        np.testing.assert_array_equal(
            out, ens.members[2].backend(probe)
        )
        assert ens.rows_routed[2] == probe.shape[0]
        assert ens.rows_routed[0] == 0

    def test_mixed_batch_routes_per_row(self, fft_app, fft_backend,
                                        probe):
        ens = self._ensemble(fft_app, fft_backend)
        choices = (np.arange(probe.shape[0]) % 3).astype(np.int8)
        out = ens.forward_routed(probe, choices)
        for idx in range(3):
            rows = np.flatnonzero(choices == idx)
            np.testing.assert_allclose(
                out[rows], ens.members[idx].backend(probe[rows])
            )
            assert ens.rows_routed[idx] == rows.size

    def test_choice_length_validated(self, fft_app, fft_backend, probe):
        ens = self._ensemble(fft_app, fft_backend)
        with pytest.raises(ConfigurationError, match="one routing choice"):
            ens.forward_routed(probe, np.zeros(probe.shape[0] - 1))

    def test_observe_detection_accumulates_fires(self, fft_app,
                                                 fft_backend):
        ens = self._ensemble(fft_app, fft_backend)
        choices = np.array([0, 1, 1, 2, 2, 2], dtype=np.int8)
        bits = np.array([True, True, False, True, True, False])
        ens.observe_detection(choices, bits)
        ens.observe_detection(choices, bits)
        np.testing.assert_array_equal(ens.fires_by_member, [2, 2, 4])

    def test_snapshot_shape(self, fft_app, fft_backend):
        snap = self._ensemble(fft_app, fft_backend).snapshot()
        assert snap["members"] == ["mlp-large", "quantize", "perforate"]
        assert snap["routed"] == [0, 0, 0]
        assert snap["fires"] == [0, 0, 0]
        assert snap["retrains"] == 0
        assert snap["degradation_level"] == 0

    def test_clone_shard_isolation(self, fft_app, fft_backend, probe):
        members = make_members(fft_app, fft_backend)
        router = InvocationRouter(members)
        base = np.linspace(0, 1, 32).reshape(-1, 1)
        ens = ApproximatorEnsemble(
            fft_app, members, router,
            learner=OnlineLearner(members, router, base,
                                  [np.full(32, 0.01)] * 3,
                                  retrain_interval=8),
        )
        clone = ens.clone_shard()
        # Immutable reference weights are shared; router state is not.
        assert clone.members[0].backend is ens.members[0].backend
        assert clone.members[1].error_predictor is not \
            ens.members[1].error_predictor
        clone.router.caution[2] = 5.0
        clone.router.set_degradation(3)
        clone.forward_routed(probe, np.zeros(probe.shape[0],
                                             dtype=np.int8))
        clone.learner.observe(probe, np.full(probe.shape[0], 1),
                              np.full(probe.shape[0], 0.1))
        assert ens.router.caution[2] == 1.0
        assert ens.router.degradation_level == 0
        assert ens.rows_routed.sum() == 0
        assert ens.learner.retrain_count == 0
        assert ens.learner.samples_consumed == 0
        # The offline base is a shared read-only artifact.
        assert clone.learner.base_features is ens.learner.base_features

    def test_blended_invocation_cycles_interpolates(self, fft_app,
                                                    fft_backend):
        from repro.core.costs import CostModel

        ens = self._ensemble(fft_app, fft_backend)
        cost_model = CostModel(fft_app)
        cpu = cost_model.cpu_iteration_cycles()
        all_cheap = ens.blended_invocation_cycles(
            np.full(10, 2, dtype=np.int8), cost_model
        )
        assert all_cheap == pytest.approx(0.1 * cpu)
        mixed = ens.blended_invocation_cycles(
            np.array([1] * 5 + [2] * 5, dtype=np.int8), cost_model
        )
        assert all_cheap < mixed < 0.6 * cpu

    def test_blended_app_costs_match_single_member(self, fft_app,
                                                   fft_backend):
        from repro.core.costs import CostModel
        from repro.hardware.checker_hw import CheckerModel

        ens = self._ensemble(fft_app, fft_backend)
        cost_model = CostModel(fft_app)
        checker = CheckerModel("tree", n_inputs=1)
        lone = ens.member_app_costs(2, cost_model, checker,
                                    fix_fraction=0.1)
        blended = ens.blended_app_costs(
            cost_model, checker, np.full(6, 2, dtype=np.int8),
            fix_fraction=0.1,
        )
        assert blended.scheme_energy_pj == pytest.approx(
            lone.scheme_energy_pj
        )
        assert blended.scheme_cycles == pytest.approx(lone.scheme_cycles)


class TestBuiltEnsemble:
    """The trained default-spec fft ensemble (session-cached prototype)."""

    def test_member_lineup(self, fft_ensemble):
        from repro.approx.npu_backend import NPUBackend

        assert fft_ensemble.member_names == [
            "mlp-large", "mlp-small", "memo"
        ]
        assert isinstance(fft_ensemble.reference, NPUBackend)
        assert fft_ensemble.reference is fft_ensemble.members[0].backend

    def test_memo_member_is_frozen_and_warmed(self, fft_ensemble):
        memo = fft_ensemble.members[2].backend
        assert isinstance(memo, MemoizingBackend)
        assert memo.frozen
        assert memo._table  # warmed offline
        # A fresh shard starts with clean traffic counters but keeps the
        # frozen table (a trained artifact, shared by reference).
        shard_memo = fft_ensemble.clone_shard().members[2].backend
        assert shard_memo.hits == 0 and shard_memo.misses == 0
        assert shard_memo._table is memo._table

    def test_measured_cost_profiles(self, fft_ensemble):
        for member in fft_ensemble.members:
            assert member.cost.relative_energy > 0
            assert member.cost.relative_latency > 0
        # The reference member's figures come from the NPU hardware
        # timing model, so it states absolute stream cycles too.
        assert fft_ensemble.members[0].cost.invocation_cycles is not None
        # Sized MLP siblings are trained independently (different seeds),
        # even when the scaled topology degenerates to the same shape.
        assert fft_ensemble.members[1].backend is not \
            fft_ensemble.members[0].backend

    def test_routing_and_execution_round_trip(self, fft_ensemble,
                                              fft_app):
        ens = fft_ensemble.clone_shard()
        rng = np.random.default_rng(9)
        x = np.atleast_2d(fft_app.test_inputs(rng))[:128]
        choices = ens.route(ens.router_features(x), threshold=0.05)
        assert choices.shape == (128,)
        assert choices.min() >= 0
        assert choices.max() < len(ens.members)
        out = ens.forward_routed(x, choices)
        assert out.shape == (128, fft_app.n_outputs)
        assert int(ens.rows_routed.sum()) == 128
