"""Unit and property tests for loop perforation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx.loop_perforation import (
    perforated_mean,
    perforated_sum,
    perforation_mask,
)
from repro.errors import ConfigurationError


class TestPerforationMask:
    def test_zero_skip_keeps_everything(self):
        assert perforation_mask(10, 0.0).all()

    def test_uniform_is_strided(self):
        mask = perforation_mask(12, 0.75, mode="uniform")
        np.testing.assert_array_equal(np.flatnonzero(mask), [0, 4, 8])

    def test_random_keeps_expected_count(self, rng):
        mask = perforation_mask(1000, 0.9, mode="random", rng=rng)
        assert mask.sum() == 100

    def test_at_least_one_survives(self, rng):
        assert perforation_mask(5, 0.99, mode="random", rng=rng).sum() >= 1
        assert perforation_mask(5, 0.99, mode="uniform").sum() >= 1

    def test_validations(self):
        with pytest.raises(ConfigurationError):
            perforation_mask(0, 0.5)
        with pytest.raises(ConfigurationError):
            perforation_mask(10, 1.0)
        with pytest.raises(ConfigurationError):
            perforation_mask(10, -0.1)
        with pytest.raises(ConfigurationError):
            perforation_mask(10, 0.5, mode="zigzag")
        with pytest.raises(ConfigurationError):
            perforation_mask(10, 0.5, mode="random")  # rng missing

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 500), st.floats(0.0, 0.99))
    def test_mask_properties(self, n, skip):
        mask = perforation_mask(n, skip, mode="uniform")
        assert mask.shape == (n,)
        assert mask.sum() >= 1
        assert mask[0]  # the first iteration always executes


class TestPerforatedReductions:
    def test_mean_exact_when_nothing_skipped(self, rng):
        values = rng.normal(size=100)
        assert perforated_mean(values, 0.0) == pytest.approx(values.mean())

    def test_sum_rescaled(self):
        values = np.ones(100)
        assert perforated_sum(values, 0.9, mode="uniform") == pytest.approx(100.0)

    def test_mean_unbiased_on_random_data(self, rng):
        values = rng.normal(10.0, 1.0, size=10000)
        approx = perforated_mean(values, 0.9, mode="random", rng=rng)
        assert approx == pytest.approx(10.0, abs=0.2)

    def test_uniform_biased_on_aliased_signal(self):
        """Strided sampling aliases periodic data — the Fig. 3 mechanism."""
        n = 1000
        stride_signal = np.zeros(n)
        stride_signal[::10] = 100.0  # period matches the keep stride
        approx = perforated_mean(stride_signal, 0.9, mode="uniform")
        exact = stride_signal.mean()
        assert abs(approx - exact) > 10 * exact / 100
