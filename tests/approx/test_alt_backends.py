"""Tests for the alternative accelerator substrates (Sec. 4 generality)."""

import numpy as np
import pytest

from repro.apps import get_application
from repro.approx.alt_backends import NoisyAnalogBackend, QuantizedKernelBackend
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def ik2j_app():
    return get_application("inversek2j")


@pytest.fixture(scope="module")
def ik2j_inputs(ik2j_app):
    rng = np.random.default_rng(2)
    return ik2j_app.test_inputs(rng)[:1000]


class TestQuantizedKernelBackend:
    def test_errors_nonzero_but_bounded(self, ik2j_app, ik2j_inputs):
        backend = QuantizedKernelBackend(ik2j_app, bits=6)
        approx = backend(ik2j_inputs)
        exact = ik2j_app.exact(ik2j_inputs)
        err = ik2j_app.output_error(approx, exact)
        assert 0.0 < err < 0.5

    def test_more_bits_less_error(self, ik2j_app, ik2j_inputs):
        exact = ik2j_app.exact(ik2j_inputs)
        coarse = QuantizedKernelBackend(ik2j_app, bits=4)
        fine = QuantizedKernelBackend(ik2j_app, bits=10)
        assert ik2j_app.output_error(fine(ik2j_inputs), exact) < (
            ik2j_app.output_error(coarse(ik2j_inputs), exact)
        )

    def test_deterministic(self, ik2j_app, ik2j_inputs):
        backend = QuantizedKernelBackend(ik2j_app, bits=6)
        np.testing.assert_array_equal(
            backend(ik2j_inputs), backend(ik2j_inputs)
        )

    def test_outputs_on_quantization_grid(self, ik2j_app, ik2j_inputs):
        backend = QuantizedKernelBackend(ik2j_app, bits=4)
        out = backend(ik2j_inputs)
        # 4 bits -> at most 16 distinct levels per output column.
        for col in range(out.shape[1]):
            assert np.unique(np.round(out[:, col], 9)).size <= 16

    def test_bits_validated(self, ik2j_app):
        with pytest.raises(ConfigurationError):
            QuantizedKernelBackend(ik2j_app, bits=1)
        with pytest.raises(ConfigurationError):
            QuantizedKernelBackend(ik2j_app, bits=20)

    def test_detection_reduces_quantization_errors(self, ik2j_app,
                                                   ik2j_inputs):
        """The full Rumba recipe on a non-NPU accelerator: train the tree
        checker on this backend's errors and fix the flagged elements."""
        from repro.metrics.analysis import error_vs_fixed_curve
        from repro.predictors.tree import DecisionTreeErrorPredictor

        backend = QuantizedKernelBackend(ik2j_app, bits=5)
        rng = np.random.default_rng(9)
        train = ik2j_app.train_inputs(rng)[:2000]
        train_errors = ik2j_app.element_errors(
            backend(train), ik2j_app.exact(train)
        )
        predictor = DecisionTreeErrorPredictor().fit(
            backend.features(train), train_errors
        )
        test_errors = ik2j_app.element_errors(
            backend(ik2j_inputs), ik2j_app.exact(ik2j_inputs)
        )
        scores = predictor.scores(features=backend.features(ik2j_inputs))
        curve = error_vs_fixed_curve(scores, test_errors, [0.0, 0.3])
        rng2 = np.random.default_rng(10)
        random_curve = error_vs_fixed_curve(
            rng2.random(test_errors.size), test_errors, [0.0, 0.3]
        )
        assert curve[1] < curve[0]             # fixing helps
        assert curve[1] < random_curve[1]      # and beats blind fixing


class TestNoisyAnalogBackend:
    def test_errors_stochastic(self, ik2j_app, ik2j_inputs):
        backend = NoisyAnalogBackend(ik2j_app, noise_fraction=0.05)
        a = backend(ik2j_inputs)
        b = backend(ik2j_inputs)
        assert not np.array_equal(a, b)  # analog noise varies per run

    def test_noise_scales_error(self, ik2j_app, ik2j_inputs):
        exact = ik2j_app.exact(ik2j_inputs)
        quiet = NoisyAnalogBackend(ik2j_app, noise_fraction=0.01)
        loud = NoisyAnalogBackend(ik2j_app, noise_fraction=0.15)
        assert ik2j_app.output_error(loud(ik2j_inputs), exact) > (
            ik2j_app.output_error(quiet(ik2j_inputs), exact)
        )

    def test_saturation_at_rails(self, ik2j_app, ik2j_inputs):
        backend = NoisyAnalogBackend(ik2j_app, noise_fraction=0.3)
        out = backend(ik2j_inputs)
        assert np.all(out >= backend._out_lo - 1e-9)
        assert np.all(out <= backend._out_hi + 1e-9)

    def test_noise_fraction_validated(self, ik2j_app):
        with pytest.raises(ConfigurationError):
            NoisyAnalogBackend(ik2j_app, noise_fraction=0.0)
        with pytest.raises(ConfigurationError):
            NoisyAnalogBackend(ik2j_app, noise_fraction=1.0)
